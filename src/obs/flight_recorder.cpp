#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

namespace phonolid::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_capacity{FlightRecorder::kDefaultCapacity};

/// Nanoseconds since the process-wide recorder epoch (pinned at first use,
/// which enable() forces before any event can be recorded).
std::uint64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

/// Per-thread ring.  Same locking discipline as trace.cpp's ThreadTable:
/// the owning thread takes its own mutex uncontended on every push; only
/// snapshot()/reset() ever contend.
struct ThreadRing {
  std::mutex mutex;
  std::vector<TraceEvent> slots;  // allocated on the first event
  std::uint64_t seq = 0;          // events ever written (wraps the ring)
  std::string name;
  std::uint32_t tid = 0;

  ~ThreadRing();

  void push(const TraceEvent& e) {
    std::lock_guard lock(mutex);
    if (slots.empty()) {
      slots.resize(g_capacity.load(std::memory_order_relaxed));
    }
    slots[seq % slots.size()] = e;
    ++seq;
  }

  /// Retained events oldest-to-newest; requires `mutex` held.
  [[nodiscard]] std::vector<TraceEvent> drain() const {
    std::vector<TraceEvent> out;
    const std::uint64_t cap = slots.size();
    const std::uint64_t n = std::min<std::uint64_t>(seq, cap);
    out.reserve(n);
    for (std::uint64_t i = seq - n; i < seq; ++i) {
      out.push_back(slots[i % cap]);
    }
    return out;
  }

  [[nodiscard]] std::uint64_t dropped() const {
    return seq > slots.size() && !slots.empty() ? seq - slots.size() : 0;
  }

  [[nodiscard]] std::string display_name() const {
    return name.empty() ? "thread-" + std::to_string(tid) : name;
  }
};

struct RecorderRegistry {
  std::mutex mutex;
  std::vector<ThreadRing*> live;
  std::vector<ThreadEvents> retired;  // flushed by exiting threads
  std::uint32_t next_tid = 0;
};

RecorderRegistry& registry() {
  // Leaked on purpose: pool worker threads flush their rings here when they
  // exit, which can happen during static destruction.
  static RecorderRegistry* reg = new RecorderRegistry();
  return *reg;
}

ThreadRing::~ThreadRing() {
  RecorderRegistry& reg = registry();
  std::lock_guard reg_lock(reg.mutex);
  std::lock_guard lock(mutex);
  if (seq > 0 || !name.empty()) {
    ThreadEvents te;
    te.tid = tid;
    te.name = display_name();
    te.dropped = dropped();
    te.events = drain();
    reg.retired.push_back(std::move(te));
  }
  std::erase(reg.live, this);
}

ThreadRing& thread_ring() {
  thread_local ThreadRing r;
  thread_local bool registered = [] {
    RecorderRegistry& reg = registry();
    std::lock_guard lock(reg.mutex);
    r.tid = reg.next_tid++;
    reg.live.push_back(&r);
    return true;
  }();
  (void)registered;
  return r;
}

void emit(TraceEvent::Phase phase, const char* name, double value,
          const EventArg* args, std::size_t num_args) noexcept {
  TraceEvent e;
  e.phase = phase;
  e.name = name;
  e.value = value;
  e.num_args =
      static_cast<std::uint8_t>(std::min(num_args, kMaxEventArgs));
  for (std::size_t i = 0; i < e.num_args; ++i) e.args[i] = args[i];
  e.ts_ns = now_ns();
  thread_ring().push(e);
}

}  // namespace

void FlightRecorder::enable(std::size_t capacity_per_thread) {
  if (capacity_per_thread > 0) {
    g_capacity.store(capacity_per_thread, std::memory_order_relaxed);
  }
  now_ns();  // pin the epoch before the first event
  g_enabled.store(true, std::memory_order_release);
}

void FlightRecorder::disable() noexcept {
  g_enabled.store(false, std::memory_order_release);
}

bool FlightRecorder::enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void FlightRecorder::reset() {
  RecorderRegistry& reg = registry();
  std::lock_guard reg_lock(reg.mutex);
  for (ThreadRing* r : reg.live) {
    std::lock_guard lock(r->mutex);
    r->seq = 0;
  }
  reg.retired.clear();
}

void FlightRecorder::set_thread_name(std::string name) {
  ThreadRing& r = thread_ring();
  std::lock_guard lock(r.mutex);
  r.name = std::move(name);
}

void FlightRecorder::begin(const char* name) noexcept {
  if (!enabled()) return;
  emit(TraceEvent::Phase::kBegin, name, 0.0, nullptr, 0);
}

void FlightRecorder::end(const char* name, const EventArg* args,
                         std::size_t num_args) noexcept {
  if (!enabled()) return;
  emit(TraceEvent::Phase::kEnd, name, 0.0, args, num_args);
}

void FlightRecorder::instant(const char* name) noexcept {
  if (!enabled()) return;
  emit(TraceEvent::Phase::kInstant, name, 0.0, nullptr, 0);
}

void FlightRecorder::instant(const char* name, const char* k1,
                             std::int64_t v1) noexcept {
  if (!enabled()) return;
  const EventArg args[] = {{k1, v1}};
  emit(TraceEvent::Phase::kInstant, name, 0.0, args, 1);
}

void FlightRecorder::instant(const char* name, const char* k1,
                             std::int64_t v1, const char* k2,
                             std::int64_t v2) noexcept {
  if (!enabled()) return;
  const EventArg args[] = {{k1, v1}, {k2, v2}};
  emit(TraceEvent::Phase::kInstant, name, 0.0, args, 2);
}

void FlightRecorder::counter_sample(const char* name, double value) noexcept {
  if (!enabled()) return;
  emit(TraceEvent::Phase::kCounter, name, value, nullptr, 0);
}

std::vector<ThreadEvents> FlightRecorder::snapshot() {
  RecorderRegistry& reg = registry();
  std::vector<ThreadEvents> out;
  std::lock_guard reg_lock(reg.mutex);
  for (ThreadRing* r : reg.live) {
    std::lock_guard lock(r->mutex);
    if (r->seq == 0 && r->name.empty()) continue;
    ThreadEvents te;
    te.tid = r->tid;
    te.name = r->display_name();
    te.dropped = r->dropped();
    te.events = r->drain();
    out.push_back(std::move(te));
  }
  for (const ThreadEvents& te : reg.retired) out.push_back(te);
  std::sort(out.begin(), out.end(),
            [](const ThreadEvents& a, const ThreadEvents& b) {
              return a.tid < b.tid;
            });
  return out;
}

}  // namespace phonolid::obs
