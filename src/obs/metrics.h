// Process-wide metrics registry: monotonic counters, gauges, and
// fixed-bucket histograms.
//
// Creation/lookup takes the registry mutex once; call sites hoist the
// returned reference into a function-local static so the hot path is a
// single relaxed atomic op with no locking:
//
//   static obs::Counter& decoded = obs::Metrics::counter("decoder.lattices");
//   decoded.add();
//
// Metric objects are never destroyed or re-allocated, so hoisted references
// stay valid for the life of the process (reset() zeroes values in place).
// This library intentionally depends on nothing but the standard library so
// every layer — including util/thread_pool — can be instrumented.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace phonolid::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (e.g. queue depth) with a high-watermark.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    bump_max(v);
  }
  /// Returns the post-update value.
  std::int64_t add(std::int64_t delta) noexcept {
    const std::int64_t v =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    bump_max(v);
    return v;
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void bump_max(std::int64_t v) noexcept {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram.  Bucket i counts observations v with
/// edges[i-1] < v <= edges[i]; the final (overflow) bucket counts
/// v > edges.back().  Edges are fixed at creation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return edges_.size() + 1;
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<double> edges_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Instantaneous double-valued level, for derived quality metrics (Cllr,
/// per-language EER, adoption precision) that the integer Gauge cannot
/// carry without lossy scaling.  Exported to Prometheus as a gauge and into
/// run reports under metrics.values.
class FloatGauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct HistogramSnapshot {
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;  // edges.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// The process-wide registry.  Lookup by name creates on first use.
class Metrics {
 public:
  static Counter& counter(const std::string& name);
  static Gauge& gauge(const std::string& name);
  static FloatGauge& float_gauge(const std::string& name);
  /// `upper_edges` must be sorted ascending; on first creation they define
  /// the buckets, later lookups of the same name ignore them (a mismatch
  /// throws std::invalid_argument to catch inconsistent call sites).
  static Histogram& histogram(const std::string& name,
                              const std::vector<double>& upper_edges);

  static std::map<std::string, std::uint64_t> counters();
  static std::map<std::string, GaugeSnapshot> gauges();
  static std::map<std::string, double> float_gauges();
  static std::map<std::string, HistogramSnapshot> histograms();

  /// Zero every metric in place (objects and hoisted references survive).
  static void reset();

 private:
  Metrics() = default;
  static Metrics& instance();

  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<FloatGauge>> float_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace phonolid::obs
