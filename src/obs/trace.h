// Hierarchical trace spans with per-thread attribution.
//
// A Span is an RAII scope that measures wall time under a '/'-joined path
// built from the enclosing spans *on the same thread*:
//
//   void process() {
//     PHONOLID_SPAN("pipeline");
//     { PHONOLID_SPAN("decode"); ... }   // aggregates under "pipeline/decode"
//   }
//
// Each thread owns a private aggregation table (path -> count/total/min/max),
// so entering and leaving a span never contends with other threads; tables
// are merged when Trace::snapshot() is called and when a thread exits.
//
// When the flight recorder (obs/flight_recorder.h) is enabled, every span
// additionally emits a begin/end event pair, so Perfetto timelines come for
// free from the same instrumentation points.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/perf.h"

namespace phonolid::obs {

/// Aggregated statistics for one span path (on one thread, or merged).
/// `cpu_s` is thread CPU time (CLOCK_THREAD_CPUTIME_ID) consumed between
/// span entry and exit on the recording thread — wall vs. CPU separates
/// "slow because busy" from "slow because waiting" per stage.  `hw` holds
/// hardware-counter deltas (obs/perf.h) accumulated over the same scopes;
/// all-zero when perf is unavailable.
struct SpanStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
  double cpu_s = 0.0;
  double min_s = std::numeric_limits<double>::infinity();
  double max_s = 0.0;
  HwCounters hw;

  void record(double seconds, double cpu_seconds = 0.0,
              const HwCounters* hw_delta = nullptr) noexcept {
    ++count;
    total_s += seconds;
    cpu_s += cpu_seconds;
    if (seconds < min_s) min_s = seconds;
    if (seconds > max_s) max_s = seconds;
    if (hw_delta != nullptr) hw.merge(*hw_delta);
  }
  void merge(const SpanStats& o) noexcept {
    count += o.count;
    total_s += o.total_s;
    cpu_s += o.cpu_s;
    if (o.min_s < min_s) min_s = o.min_s;
    if (o.max_s > max_s) max_s = o.max_s;
    hw.merge(o.hw);
  }
};

/// One path's merged view plus the per-thread breakdown.
struct SpanSnapshot {
  std::string path;
  SpanStats total;
  /// Keyed by a small per-thread index assigned in registration order
  /// (index 0 is whichever thread recorded a span first).
  std::map<std::uint32_t, SpanStats> by_thread;
};

class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Record the span now (instead of at scope exit) and return the elapsed
  /// seconds.  Subsequent destruction is a no-op.
  double stop() noexcept;

  /// Attach a key/value to this span's end event in the flight recorder
  /// (shown as "args" in Perfetto; e.g. the DBA round index or |Tr_DBA|).
  /// At most kMaxEventArgs annotations; extras are silently dropped.  Has
  /// no effect on the aggregated statistics.
  void annotate(const char* key, std::int64_t value) noexcept;

 private:
  std::chrono::steady_clock::time_point start_;
  double cpu_start_s_ = 0.0;  // thread CPU clock at entry
  const char* name_ = nullptr;
  HwCounters hw_start_;       // this thread's counters at entry
  EventArg args_[kMaxEventArgs];
  std::uint8_t num_args_ = 0;
  std::size_t parent_len_ = 0;  // path length to restore on exit
  bool hw_valid_ = false;  // hw_start_ holds a successful perf read
  bool stopped_ = false;
};

/// One live thread's instantaneous span state, for cross-thread samplers
/// (obs/energy.h apportions RAPL package joules by CPU-time weight).
struct ActiveThread {
  std::uint32_t index = 0;  // same per-thread index as SpanSnapshot
  std::string path;         // '/'-joined active span stack ("" = idle)
  double cpu_s = 0.0;       // that thread's cumulative CPU seconds
};

class Trace {
 public:
  /// Merged view over every thread that ever recorded a span (including
  /// threads that have since exited), sorted by path.
  static std::vector<SpanSnapshot> snapshot();

  /// The calling thread's current '/'-joined span path ("" outside spans).
  /// Valid only on the calling thread and only until the next span
  /// enter/exit there.
  [[nodiscard]] static const std::string& current_thread_path() noexcept;

  /// Every live registered thread's current span path and CPU time.
  /// Safe to call from a sampler thread while spans open and close.
  [[nodiscard]] static std::vector<ActiveThread> active_threads();

  /// Drop all recorded statistics (active spans still record on exit).
  static void reset();
};

#define PHONOLID_OBS_CAT2(a, b) a##b
#define PHONOLID_OBS_CAT(a, b) PHONOLID_OBS_CAT2(a, b)
/// Opens an RAII trace span for the rest of the enclosing scope.
#define PHONOLID_SPAN(name) \
  ::phonolid::obs::Span PHONOLID_OBS_CAT(phonolid_span_, __LINE__)(name)

}  // namespace phonolid::obs
