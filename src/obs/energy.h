// Per-stage energy accounting with a portable cost model.
//
// Answers "what did this run cost in joules, and which stage spent them?"
// with two interchangeable sources, recorded in every report as
// `energy.source`:
//
//   - "rapl": a background sampler thread reads Intel RAPL package energy
//     from /sys/class/powercap/intel-rapl:<pkg>/energy_uj (wrap-aware) and
//     apportions each sampling interval's joules to the span paths open on
//     each live thread, weighted by that thread's CPU-time delta over the
//     interval (obs::Trace::active_threads).  Joules burned while no
//     instrumented span is open land in the "(unattributed)" bucket, so
//     per-span energies always sum to the measured total.
//
//   - "software": a deterministic cost model.  Instrumented kernels and
//     stages call Energy::charge_flops(flops) (la::gemm*/gemv*, the feature
//     pipeline, the Viterbi decoder, VSM scoring), and each charge converts
//     to joules at a fixed joules-per-GFLOP rate, attributed to the calling
//     thread's current span path.  Charges depend only on problem sizes —
//     never on wall time, thread count, or machine — so software-model
//     totals are reproducible across hosts and PHONOLID_THREADS settings,
//     which is what makes `report-diff --max-energy-delta-pct` a portable
//     CI gate.  Calibration: the default rate (see kDefaultJoulesPerGflop)
//     is set so the synthetic pipeline's decode stage — whose achieved
//     GFLOP/s is already measured by the decode.gflops counter track —
//     prices at roughly an embedded-class package (a few watts at a few
//     GFLOP/s); override with PHONOLID_JOULES_PER_GFLOP.
//
// Source selection (PHONOLID_ENERGY): "rapl" | "software" | "off" | "auto"
// (default).  "auto" uses RAPL when the powercap files are readable
// (requires root on most systems) and falls back to the software model
// otherwise; "rapl" on a machine without readable RAPL also degrades to
// "software" rather than silently reporting zeros.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/json.h"

namespace phonolid::obs {

enum class EnergySource { kOff, kSoftware, kRapl };

[[nodiscard]] const char* to_string(EnergySource source) noexcept;

/// Default software-model price: 0.30 J per GFLOP (~3.3 GFLOP/J), an
/// embedded-multicore-class operating point.  The absolute level only
/// shifts every report by a constant factor; gates compare runs, not watts
/// against a meter.
inline constexpr double kDefaultJoulesPerGflop = 0.30;

class Energy {
 public:
  /// Resolve PHONOLID_ENERGY and start the RAPL sampler when selected.
  /// Idempotent; called by every entry point via
  /// obs::enable_recorder_from_env().
  static void init_from_env();

  [[nodiscard]] static EnergySource source() noexcept;

  /// Software cost model: account `flops` floating-point operations to the
  /// calling thread's current span path.  Under every source this also
  /// feeds the total-GFLOP accounting behind `energy.gflops_per_watt`;
  /// the joule conversion happens only when source() == kSoftware.
  /// No-op (one relaxed load) when source() == kOff.
  static void charge_flops(double flops) noexcept;

  /// Active joules-per-GFLOP rate (PHONOLID_JOULES_PER_GFLOP or default).
  [[nodiscard]] static double joules_per_gflop() noexcept;

  /// Total joules accumulated so far (sum over joules_by_span()).
  [[nodiscard]] static double total_joules();

  /// Total GFLOPs charged so far (both sources).
  [[nodiscard]] static double total_gflops() noexcept;

  /// Per-span-path joules, merged across threads; RAPL runs include the
  /// "(unattributed)" bucket.  Sums exactly to total_joules().
  [[nodiscard]] static std::map<std::string, double> joules_by_span();

  /// The "energy" report section.  Joule values are rounded to 1 µJ so
  /// software-model reports are byte-stable across thread counts (the
  /// per-thread accumulation order perturbs only sub-nanojoule bits).
  /// Forces a final RAPL sample first, so the section is current.
  [[nodiscard]] static Json energy_json();

  /// Publish energy.* float gauges into the metrics registry so the
  /// Prometheus exporter and report metrics.values carry the totals.
  static void publish_gauges();

  /// Drop all accumulated energy and GFLOP accounting (tests).
  static void reset();

  /// Stop the RAPL sampler after one final sample.  Idempotent; called at
  /// entry-point exit via obs::export_from_env().
  static void shutdown() noexcept;

  /// Test hook: force a source (bypassing the environment), resetting
  /// accumulated state.  kRapl requires readable powercap files and falls
  /// back to kSoftware like init_from_env does.
  static void force_source_for_test(EnergySource source);
};

}  // namespace phonolid::obs
