#include "obs/symbolize.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <vector>

#if defined(__linux__)
#include <dlfcn.h>
#include <elf.h>
#include <link.h>
#include <unistd.h>
#endif
#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace phonolid::obs {

namespace {

#if defined(__linux__)

/// One STT_FUNC entry from a module's symbol table, addresses relative to
/// the module's load base (link-time vaddr for ET_EXEC, file offset from
/// base for ET_DYN — dl_iterate_phdr's dlpi_addr normalizes both).
struct FuncSym {
  std::uintptr_t addr = 0;
  std::uintptr_t size = 0;
  std::uint32_t name_off = 0;
  bool operator<(const FuncSym& o) const { return addr < o.addr; }
};

struct Module {
  std::uintptr_t base = 0;  // dlpi_addr
  std::uintptr_t lo = 0, hi = 0;  // executable-segment pc range
  std::string path;
  bool parsed = false;
  std::vector<FuncSym> funcs;  // sorted by addr
  std::string strtab;

  void parse_symbols();
};

/// Read a module's .symtab (preferred — it has local symbols) or .dynsym.
/// Any malformed or unreadable file just leaves `funcs` empty; the caller
/// falls back to dladdr.
void Module::parse_symbols() {
  parsed = true;
  if (path.empty()) return;
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::vector<char> file((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto in_bounds = [&](std::size_t off, std::size_t len) {
    return off <= file.size() && len <= file.size() - off;
  };
  if (!in_bounds(0, sizeof(ElfW(Ehdr)))) return;
  ElfW(Ehdr) eh;
  std::memcpy(&eh, file.data(), sizeof(eh));
  if (std::memcmp(eh.e_ident, ELFMAG, SELFMAG) != 0) return;
  if (eh.e_shentsize != sizeof(ElfW(Shdr))) return;
  if (!in_bounds(eh.e_shoff, static_cast<std::size_t>(eh.e_shnum) *
                                 sizeof(ElfW(Shdr)))) {
    return;
  }
  std::vector<ElfW(Shdr)> sections(eh.e_shnum);
  std::memcpy(sections.data(), file.data() + eh.e_shoff,
              sections.size() * sizeof(ElfW(Shdr)));

  const ElfW(Shdr)* symtab = nullptr;
  for (const auto& sh : sections) {  // prefer .symtab over .dynsym
    if (sh.sh_type == SHT_SYMTAB) symtab = &sh;
  }
  if (symtab == nullptr) {
    for (const auto& sh : sections) {
      if (sh.sh_type == SHT_DYNSYM) symtab = &sh;
    }
  }
  if (symtab == nullptr || symtab->sh_entsize != sizeof(ElfW(Sym)) ||
      symtab->sh_link >= sections.size()) {
    return;
  }
  const ElfW(Shdr)& str = sections[symtab->sh_link];
  if (!in_bounds(symtab->sh_offset, symtab->sh_size) ||
      !in_bounds(str.sh_offset, str.sh_size)) {
    return;
  }
  strtab.assign(file.data() + str.sh_offset, str.sh_size);
  const std::size_t count = symtab->sh_size / sizeof(ElfW(Sym));
  funcs.reserve(count / 4);
  for (std::size_t i = 0; i < count; ++i) {
    ElfW(Sym) sym;
    std::memcpy(&sym, file.data() + symtab->sh_offset + i * sizeof(sym),
                sizeof(sym));
    if ((sym.st_info & 0xf) != STT_FUNC) continue;  // ELF*_ST_TYPE
    if (sym.st_value == 0 || sym.st_shndx == SHN_UNDEF) continue;
    if (sym.st_name >= strtab.size()) continue;
    FuncSym f;
    f.addr = static_cast<std::uintptr_t>(sym.st_value);
    f.size = static_cast<std::uintptr_t>(sym.st_size);
    f.name_off = sym.st_name;
    funcs.push_back(f);
  }
  std::sort(funcs.begin(), funcs.end());
}

#endif  // __linux__

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

struct Symbolizer::Impl {
#if defined(__linux__)
  std::vector<Module> modules;  // sorted by lo
#endif
  std::unordered_map<std::uintptr_t, Symbol> cache;
};

#if defined(__linux__)
namespace {

int collect_module(dl_phdr_info* info, std::size_t, void* data) {
  auto* modules = static_cast<std::vector<Module>*>(data);
  for (int i = 0; i < info->dlpi_phnum; ++i) {
    const auto& ph = info->dlpi_phdr[i];
    if (ph.p_type != PT_LOAD || (ph.p_flags & PF_X) == 0) continue;
    Module m;
    m.base = info->dlpi_addr;
    m.lo = info->dlpi_addr + ph.p_vaddr;
    m.hi = m.lo + ph.p_memsz;
    m.path = info->dlpi_name != nullptr ? info->dlpi_name : "";
    if (m.path.empty()) {
      // The main executable reports an empty name; resolve it so its
      // .symtab (with all the anonymous-namespace locals) is parseable.
      char buf[4096];
      const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
      if (n > 0) m.path.assign(buf, static_cast<std::size_t>(n));
    }
    modules->push_back(std::move(m));
  }
  return 0;
}

}  // namespace
#endif  // __linux__

Symbolizer::Symbolizer() : impl_(new Impl) {
#if defined(__linux__)
  dl_iterate_phdr(collect_module, &impl_->modules);
  std::sort(impl_->modules.begin(), impl_->modules.end(),
            [](const Module& a, const Module& b) { return a.lo < b.lo; });
#endif
}

Symbolizer::~Symbolizer() { delete impl_; }

std::string Symbolizer::demangle(const char* mangled) {
#if defined(__GNUG__)
  int status = 0;
  char* out = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && out != nullptr) {
    std::string s(out);
    std::free(out);
    return s;
  }
  std::free(out);
#endif
  return mangled;
}

const Symbol& Symbolizer::lookup(std::uintptr_t pc) {
  if (const auto it = impl_->cache.find(pc); it != impl_->cache.end()) {
    return it->second;
  }
  Symbol sym;
#if defined(__linux__)
  Module* mod = nullptr;
  for (auto& m : impl_->modules) {
    if (pc >= m.lo && pc < m.hi) {
      mod = &m;
      break;
    }
  }
  if (mod != nullptr) {
    sym.module = basename_of(mod->path);
    sym.offset = pc - mod->base;
    if (!mod->parsed) mod->parse_symbols();
    const std::uintptr_t rel = pc - mod->base;
    // Last symbol starting at or before rel; accept when rel falls inside
    // its extent (zero-size symbols accept any pc up to the next symbol).
    auto it = std::upper_bound(mod->funcs.begin(), mod->funcs.end(),
                               FuncSym{rel, 0, 0});
    if (it != mod->funcs.begin()) {
      --it;
      const std::uintptr_t end =
          it->size != 0 ? it->addr + it->size
                        : (std::next(it) != mod->funcs.end()
                               ? std::next(it)->addr
                               : rel + 1);
      if (rel >= it->addr && rel < end) {
        sym.name = demangle(mod->strtab.c_str() + it->name_off);
        sym.offset = rel - it->addr;
        sym.symbolized = true;
      }
    }
  }
  if (!sym.symbolized) {
    Dl_info info{};
    if (dladdr(reinterpret_cast<void*>(pc), &info) != 0) {
      if (sym.module.empty() && info.dli_fname != nullptr) {
        sym.module = basename_of(info.dli_fname);
      }
      if (info.dli_sname != nullptr) {
        sym.name = demangle(info.dli_sname);
        sym.offset = pc - reinterpret_cast<std::uintptr_t>(info.dli_saddr);
        sym.symbolized = true;
      }
    }
  }
#endif
  if (!sym.symbolized) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s+0x%llx",
                  sym.module.empty() ? "??" : sym.module.c_str(),
                  static_cast<unsigned long long>(sym.offset != 0
                                                      ? sym.offset
                                                      : pc));
    sym.name = buf;
  }
  return impl_->cache.emplace(pc, std::move(sym)).first->second;
}

}  // namespace phonolid::obs
