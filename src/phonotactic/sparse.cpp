#include "phonotactic/sparse.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "la/kernels.h"
#include "util/serialize.h"

namespace phonolid::phonotactic {

SparseVec::SparseVec(std::vector<std::uint32_t> indices,
                     std::vector<float> values)
    : indices_(std::move(indices)), values_(std::move(values)) {
  if (indices_.size() != values_.size()) {
    throw std::invalid_argument("SparseVec: size mismatch");
  }
  for (std::size_t i = 1; i < indices_.size(); ++i) {
    if (indices_[i] <= indices_[i - 1]) {
      throw std::invalid_argument("SparseVec: indices must be increasing");
    }
  }
}

SparseVec SparseVec::from_pairs(
    std::vector<std::pair<std::uint32_t, float>> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SparseVec out;
  out.indices_.reserve(pairs.size());
  out.values_.reserve(pairs.size());
  for (const auto& [idx, val] : pairs) {
    if (!out.indices_.empty() && out.indices_.back() == idx) {
      out.values_.back() += val;
    } else {
      out.indices_.push_back(idx);
      out.values_.push_back(val);
    }
  }
  return out;
}

float SparseVec::at(std::uint32_t index) const noexcept {
  const auto it = std::lower_bound(indices_.begin(), indices_.end(), index);
  if (it == indices_.end() || *it != index) return 0.0f;
  return values_[static_cast<std::size_t>(it - indices_.begin())];
}

double SparseVec::sum() const noexcept {
  double s = 0.0;
  for (float v : values_) s += v;
  return s;
}

double SparseVec::norm() const noexcept {
  double s = 0.0;
  for (float v : values_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

void SparseVec::scale(float factor) noexcept {
  for (auto& v : values_) v *= factor;
}

double SparseVec::dot(const SparseVec& a, const SparseVec& b) noexcept {
  double s = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.indices_.size() && j < b.indices_.size()) {
    const std::uint32_t ia = a.indices_[i];
    const std::uint32_t jb = b.indices_[j];
    if (ia == jb) {
      s += static_cast<double>(a.values_[i]) * b.values_[j];
      ++i;
      ++j;
    } else if (ia < jb) {
      ++i;
    } else {
      ++j;
    }
  }
  return s;
}

double SparseVec::dot_dense(std::span<const float> dense) const noexcept {
  return la::sparse_dot(indices_, values_, dense);
}

void SparseVec::add_to_dense(float alpha, std::span<float> dense) const noexcept {
  la::sparse_axpy(alpha, indices_, values_, dense);
}

void SparseVec::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic("PSPV", 1);
  w.write_u32_vec(indices_);
  w.write_f32_vec(values_);
}

SparseVec SparseVec::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic("PSPV", 1);
  auto indices = r.read_u32_vec();
  auto values = r.read_f32_vec();
  return SparseVec(std::move(indices), std::move(values));
}

}  // namespace phonolid::phonotactic
