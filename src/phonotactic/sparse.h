// Sparse feature vectors.
//
// Phonotactic supervectors live in R^F with F = f + f^2 + ... + f^N
// (paper Eq. 3); only the N-grams observed in a lattice are non-zero, so
// everything downstream (TFLLR scaling, SVM training, scoring) operates on
// index-sorted sparse vectors.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace phonolid::phonotactic {

class SparseVec {
 public:
  SparseVec() = default;
  /// `indices` must be strictly increasing and the same length as `values`.
  SparseVec(std::vector<std::uint32_t> indices, std::vector<float> values);

  /// Builds from unsorted (index, value) pairs, merging duplicates by sum.
  static SparseVec from_pairs(
      std::vector<std::pair<std::uint32_t, float>> pairs);

  [[nodiscard]] std::size_t nnz() const noexcept { return indices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return indices_.empty(); }
  [[nodiscard]] const std::vector<std::uint32_t>& indices() const noexcept {
    return indices_;
  }
  [[nodiscard]] const std::vector<float>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::vector<float>& values() noexcept { return values_; }

  /// Value at `index` (0 if absent); O(log nnz).
  [[nodiscard]] float at(std::uint32_t index) const noexcept;

  /// Sum of values.
  [[nodiscard]] double sum() const noexcept;
  /// Euclidean norm.
  [[nodiscard]] double norm() const noexcept;

  void scale(float factor) noexcept;

  /// Sparse-sparse dot product.
  [[nodiscard]] static double dot(const SparseVec& a, const SparseVec& b) noexcept;
  /// Sparse-dense dot product (`dense` indexed by feature id).
  [[nodiscard]] double dot_dense(std::span<const float> dense) const noexcept;
  /// dense += alpha * this.
  void add_to_dense(float alpha, std::span<float> dense) const noexcept;

  void serialize(std::ostream& out) const;
  static SparseVec deserialize(std::istream& in);

 private:
  std::vector<std::uint32_t> indices_;
  std::vector<float> values_;
};

}  // namespace phonolid::phonotactic
