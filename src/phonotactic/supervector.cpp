#include "phonotactic/supervector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/serialize.h"

namespace phonolid::phonotactic {

SupervectorBuilder::SupervectorBuilder(NgramIndexer indexer,
                                       SupervectorConfig config)
    : indexer_(std::move(indexer)), config_(config) {}

SparseVec SupervectorBuilder::build(const decoder::Lattice& lattice) const {
  return build_from_counts(counts(lattice));
}

SparseVec SupervectorBuilder::counts(const decoder::Lattice& lattice) const {
  return config_.use_lattice
             ? expected_ngram_counts(lattice, indexer_, config_.counts)
             : sequence_ngram_counts(lattice.best_path(), indexer_);
}

SparseVec SupervectorBuilder::build_from_counts(SparseVec counts) const {
  static obs::Counter& built =
      obs::Metrics::counter("phonotactic.supervectors");
  built.add();
  if (counts.empty()) return counts;

  // Per-order normalisation: p(d | ℓ) = c(d) / Σ_{same order} c(m).
  const std::size_t max_order = indexer_.max_order();
  std::vector<double> order_total(max_order, 0.0);
  const auto order_of = [&](std::uint32_t id) {
    std::size_t n = 1;
    while (n < max_order &&
           id >= indexer_.order_offset(n + 1)) {
      ++n;
    }
    return n;
  };
  const auto& idx = counts.indices();
  auto& val = counts.values();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    order_total[order_of(idx[i]) - 1] += val[i];
  }
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const double tot = order_total[order_of(idx[i]) - 1];
    if (tot > 0.0) val[i] = static_cast<float>(val[i] / tot);
  }
  return counts;
}

TfllrScaler::TfllrScaler(std::size_t dimension)
    : accum_(dimension, 0.0), scales_(dimension, 1.0f) {}

void TfllrScaler::accumulate(const SparseVec& supervector) {
  if (finalized_) throw std::logic_error("TfllrScaler: already finalized");
  const auto& idx = supervector.indices();
  const auto& val = supervector.values();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= accum_.size()) {
      throw std::out_of_range("TfllrScaler: index out of range");
    }
    accum_[idx[i]] += val[i];
    total_ += val[i];
  }
}

void TfllrScaler::merge(const TfllrScaler& other) {
  if (finalized_ || other.finalized_) {
    throw std::logic_error("TfllrScaler::merge: already finalized");
  }
  if (accum_.size() != other.accum_.size()) {
    throw std::invalid_argument("TfllrScaler::merge: dimension mismatch");
  }
  for (std::size_t i = 0; i < accum_.size(); ++i) {
    accum_[i] += other.accum_[i];
  }
  total_ += other.total_;
}

void TfllrScaler::finalize() {
  if (finalized_) return;
  // p(d_q | ℓ_all): background probability with an epsilon floor so that
  // rare/unseen features get a large-but-bounded boost (the TFLLR
  // "log-likelihood-ratio" weighting of informative rare N-grams).
  const double floor = 1.0 / std::max(1.0, total_ * 10.0 +
                                                static_cast<double>(accum_.size()));
  for (std::size_t i = 0; i < accum_.size(); ++i) {
    const double p = std::max(accum_[i] / std::max(total_, 1.0), floor);
    scales_[i] = static_cast<float>(1.0 / std::sqrt(p));
  }
  accum_.clear();
  accum_.shrink_to_fit();
  finalized_ = true;
}

void TfllrScaler::transform(SparseVec& supervector) const {
  if (!finalized_) throw std::logic_error("TfllrScaler: not finalized");
  const auto& idx = supervector.indices();
  auto& val = supervector.values();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= scales_.size()) {
      throw std::out_of_range("TfllrScaler: index out of range");
    }
    val[i] *= scales_[idx[i]];
  }
}

void TfllrScaler::serialize(std::ostream& out) const {
  if (!finalized_) throw std::logic_error("TfllrScaler: not finalized");
  util::BinaryWriter w(out);
  w.write_magic("PTFL", 1);
  w.write_f32_vec(scales_);
}

TfllrScaler TfllrScaler::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic("PTFL", 1);
  TfllrScaler s;
  s.scales_ = r.read_f32_vec();
  s.finalized_ = true;
  return s;
}

}  // namespace phonolid::phonotactic
