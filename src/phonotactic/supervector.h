// Phonotactic supervectors (paper Eq. 2-3) and TFLLR scaling (Eq. 5).
//
// The supervector φ(x) holds, for every N-gram d_q, its probability in the
// lattice:  p(d_q | ℓ) = c_E(d_q | ℓ) / Σ_m c_E(d_m | ℓ), normalised
// *within each order* so unigrams/bigrams/trigrams each form a probability
// distribution.  The TFLLR kernel K(x_i, x_j) = Σ_q p_q(x_i) p_q(x_j) /
// p_q(all) is realised as a feature-space scaling by 1/sqrt(p(d_q|ℓ_all)),
// which makes the plain linear SVM compute the TFLLR kernel exactly.
#pragma once

#include <iosfwd>
#include <vector>

#include "decoder/lattice.h"
#include "phonotactic/ngram_counts.h"
#include "phonotactic/sparse.h"

namespace phonolid::phonotactic {

struct SupervectorConfig {
  NgramCountConfig counts;
  /// Use lattice expected counts (true) or 1-best sequence counts (false —
  /// ablation mode).
  bool use_lattice = true;
};

/// Builds probability supervectors from lattices.
class SupervectorBuilder {
 public:
  SupervectorBuilder(NgramIndexer indexer, SupervectorConfig config = {});

  [[nodiscard]] const NgramIndexer& indexer() const noexcept { return indexer_; }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return indexer_.dimension();
  }

  /// φ(x) for one decoded utterance
  /// (= build_from_counts(counts(lattice))).
  [[nodiscard]] SparseVec build(const decoder::Lattice& lattice) const;

  /// Raw (un-normalised) N-gram counts of one lattice — the mergeable
  /// partial form: counts of independently decoded segments can be summed
  /// with a CountAccumulator before normalisation.
  [[nodiscard]] SparseVec counts(const decoder::Lattice& lattice) const;

  /// Per-order normalisation of raw counts into a probability supervector.
  [[nodiscard]] SparseVec build_from_counts(SparseVec counts) const;

 private:
  NgramIndexer indexer_;
  SupervectorConfig config_;
};

/// TFLLR feature map: v_q -> v_q / sqrt(p(d_q | ℓ_all)).
///
/// fit() accumulates the background distribution over a training collection;
/// transform() applies the scaling in place.  Unseen N-grams fall back to a
/// uniform-probability floor so test-time features stay bounded.
class TfllrScaler {
 public:
  TfllrScaler() = default;
  explicit TfllrScaler(std::size_t dimension);

  /// Accumulate one training supervector into the background distribution.
  void accumulate(const SparseVec& supervector);

  /// Fold another (un-finalised) scaler's accumulated background into this
  /// one — partial fits from shards/streams merge before finalize().
  void merge(const TfllrScaler& other);

  /// Finalise p(d_q | ℓ_all) and the per-feature scale factors.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] std::size_t dimension() const noexcept { return scales_.size(); }

  /// Scale a supervector in place.
  void transform(SparseVec& supervector) const;

  /// Scale factor of one feature (for tests / diagnostics).
  [[nodiscard]] float scale_of(std::uint32_t index) const {
    return scales_.at(index);
  }

  void serialize(std::ostream& out) const;
  static TfllrScaler deserialize(std::istream& in);

 private:
  std::vector<double> accum_;
  std::vector<float> scales_;
  double total_ = 0.0;
  bool finalized_ = false;
};

}  // namespace phonolid::phonotactic
