#include "phonotactic/ngram_counts.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math_util.h"

namespace phonolid::phonotactic {

NgramIndexer::NgramIndexer(std::size_t num_phones, std::size_t max_order)
    : num_phones_(num_phones), max_order_(max_order) {
  if (num_phones == 0 || max_order == 0) {
    throw std::invalid_argument("NgramIndexer: empty configuration");
  }
  std::size_t offset = 0;
  std::size_t size = 1;
  for (std::size_t n = 1; n <= max_order; ++n) {
    size *= num_phones;
    if (offset + size > std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument("NgramIndexer: feature space exceeds 2^32");
    }
    offsets_.push_back(offset);
    sizes_.push_back(size);
    offset += size;
  }
  dimension_ = offset;
}

std::uint32_t NgramIndexer::index(const std::uint32_t* phones,
                                  std::size_t order) const {
  assert(order >= 1 && order <= max_order_);
  std::size_t id = 0;
  for (std::size_t i = 0; i < order; ++i) {
    assert(phones[i] < num_phones_);
    id = id * num_phones_ + phones[i];
  }
  return static_cast<std::uint32_t>(offsets_[order - 1] + id);
}

std::vector<std::uint32_t> NgramIndexer::decode(std::uint32_t id) const {
  std::size_t order = 0;
  std::size_t local = id;
  for (std::size_t n = 1; n <= max_order_; ++n) {
    if (local < sizes_[n - 1]) {
      order = n;
      break;
    }
    local -= sizes_[n - 1];
  }
  if (order == 0) throw std::out_of_range("NgramIndexer::decode: bad id");
  std::vector<std::uint32_t> phones(order);
  for (std::size_t i = order; i-- > 0;) {
    phones[i] = static_cast<std::uint32_t>(local % num_phones_);
    local /= num_phones_;
  }
  return phones;
}

SparseVec expected_ngram_counts(const decoder::Lattice& lattice,
                                const NgramIndexer& indexer,
                                const NgramCountConfig& config) {
  static obs::Counter& lattices =
      obs::Metrics::counter("phonotactic.counts.lattices");
  static obs::Counter& tuples =
      obs::Metrics::counter("phonotactic.counts.tuples");
  PHONOLID_SPAN("counts");
  lattices.add();

  std::vector<std::pair<std::uint32_t, float>> pairs;
  if (lattice.edges().empty()) return SparseVec();

  std::vector<double> alpha, beta;
  const double total =
      lattice.forward_backward(config.acoustic_scale, alpha, beta);
  if (!std::isfinite(total)) return SparseVec();

  const auto& edges = lattice.edges();
  const auto& adj = lattice.adjacency();

  // Upper bound on any node's backward score, for safe DFS pruning (edge
  // scores may be positive, so beta is not bounded by 0).
  double max_beta = 0.0;
  for (double b : beta) {
    if (std::isfinite(b)) max_beta = std::max(max_beta, b);
  }

  // Depth-first enumeration of connected edge tuples up to max_order.
  // `prefix_score` = alpha(start of first edge) + Σ scaled edge scores.
  std::uint32_t phones[8];
  if (indexer.max_order() > 8) {
    throw std::invalid_argument("expected_ngram_counts: max_order > 8");
  }
  const double floor_log = std::log(config.count_floor);

  struct StackItem {
    std::uint32_t edge;
    std::size_t depth;      // 1-based order of this tuple element
    double prefix_score;    // includes this edge's scaled score
  };
  std::vector<StackItem> stack;
  std::vector<std::uint32_t> chain(indexer.max_order());

  pairs.reserve(edges.size() * 4);
  for (std::uint32_t e0 = 0; e0 < edges.size(); ++e0) {
    const auto& first = edges[e0];
    const double a = alpha[first.start_node];
    if (!std::isfinite(a)) continue;
    stack.push_back(
        {e0, 1, a + config.acoustic_scale * first.score});
    while (!stack.empty()) {
      const StackItem item = stack.back();
      stack.pop_back();
      const auto& edge = edges[item.edge];
      chain[item.depth - 1] = item.edge;
      // Emit the count for this tuple (order = depth).
      const double logp = item.prefix_score + beta[edge.end_node] - total;
      if (logp >= floor_log && std::isfinite(beta[edge.end_node])) {
        for (std::size_t i = 0; i < item.depth; ++i) {
          phones[i] = edges[chain[i]].phone;
        }
        pairs.emplace_back(indexer.index(phones, item.depth),
                           static_cast<float>(std::exp(std::min(logp, 0.0))));
      }
      // Extend.
      if (item.depth < indexer.max_order() &&
          std::isfinite(beta[edge.end_node])) {
        for (std::uint32_t next : adj[edge.end_node]) {
          const double score =
              item.prefix_score + config.acoustic_scale * edges[next].score;
          // Cheap bound: even with the most favourable continuation the
          // tuple can't beat the floor.
          if (score - total + max_beta < floor_log - 1.0) continue;
          stack.push_back({next, item.depth + 1, score});
        }
      }
    }
  }
  tuples.add(pairs.size());
  return SparseVec::from_pairs(std::move(pairs));
}

SparseVec sequence_ngram_counts(const std::vector<std::uint32_t>& phones,
                                const NgramIndexer& indexer) {
  std::vector<std::pair<std::uint32_t, float>> pairs;
  for (std::size_t n = 1; n <= indexer.max_order(); ++n) {
    if (phones.size() < n) break;
    for (std::size_t i = 0; i + n <= phones.size(); ++i) {
      pairs.emplace_back(indexer.index(&phones[i], n), 1.0f);
    }
  }
  return SparseVec::from_pairs(std::move(pairs));
}

namespace {

// Two-pointer union of two index-sorted sparse vectors; shared indices sum
// as acc + incoming (fixed operand order keeps the result deterministic).
SparseVec merge_sorted(const SparseVec& acc, const SparseVec& inc) {
  if (acc.empty()) return inc;
  if (inc.empty()) return acc;
  const auto& ai = acc.indices();
  const auto& av = acc.values();
  const auto& bi = inc.indices();
  const auto& bv = inc.values();
  std::vector<std::pair<std::uint32_t, float>> pairs;
  pairs.reserve(ai.size() + bi.size());
  std::size_t a = 0, b = 0;
  while (a < ai.size() && b < bi.size()) {
    if (ai[a] < bi[b]) {
      pairs.emplace_back(ai[a], av[a]);
      ++a;
    } else if (bi[b] < ai[a]) {
      pairs.emplace_back(bi[b], bv[b]);
      ++b;
    } else {
      pairs.emplace_back(ai[a], av[a] + bv[b]);
      ++a;
      ++b;
    }
  }
  for (; a < ai.size(); ++a) pairs.emplace_back(ai[a], av[a]);
  for (; b < bi.size(); ++b) pairs.emplace_back(bi[b], bv[b]);
  // Input is already sorted and duplicate-free, so from_pairs is a plain
  // repack here.
  return SparseVec::from_pairs(std::move(pairs));
}

}  // namespace

void CountAccumulator::add(const SparseVec& counts) {
  merged_ = merge_sorted(merged_, counts);
}

void CountAccumulator::merge(const CountAccumulator& other) {
  merged_ = merge_sorted(merged_, other.merged_);
}

}  // namespace phonolid::phonotactic
