// Expected N-gram counts over phone lattices (paper §2.2, Eq. 2).
//
//   c_E(h_i..h_{i+N-1} | ℓ) = Σ over connected edge tuples
//       exp( α(start(e_i)) + Σ_j scale·score(e_j) + β(end(e_{i+N-1})) − total )
//
// i.e. the posterior-weighted number of times the phone N-gram occurs on a
// path through the lattice.  Indexing packs all orders 1..N into one id
// space so a supervector is a single sparse vector (paper Eq. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "decoder/lattice.h"
#include "phonotactic/sparse.h"

namespace phonolid::phonotactic {

/// Dense id packing for N-grams over `num_phones` phones, orders 1..max_order.
class NgramIndexer {
 public:
  NgramIndexer(std::size_t num_phones, std::size_t max_order);

  [[nodiscard]] std::size_t num_phones() const noexcept { return num_phones_; }
  [[nodiscard]] std::size_t max_order() const noexcept { return max_order_; }
  /// Total feature-space dimensionality F = Σ_n f^n.
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  /// First id of order-n features (n in 1..max_order).
  [[nodiscard]] std::size_t order_offset(std::size_t order) const {
    return offsets_.at(order - 1);
  }
  /// Number of order-n features (= f^n).
  [[nodiscard]] std::size_t order_size(std::size_t order) const {
    return sizes_.at(order - 1);
  }

  /// Id of the n-gram `phones[0..n)`.
  [[nodiscard]] std::uint32_t index(const std::uint32_t* phones,
                                    std::size_t order) const;
  /// Decode an id back to (order, phones); for diagnostics and tests.
  [[nodiscard]] std::vector<std::uint32_t> decode(std::uint32_t id) const;

 private:
  std::size_t num_phones_;
  std::size_t max_order_;
  std::size_t dimension_;
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> sizes_;
};

struct NgramCountConfig {
  std::size_t max_order = 3;
  double acoustic_scale = 0.3;
  /// Tuples whose path posterior falls below this are skipped.
  double count_floor = 1e-6;
};

/// Expected counts of every 1..N-gram in the lattice, as a sparse vector in
/// the indexer's id space.
SparseVec expected_ngram_counts(const decoder::Lattice& lattice,
                                const NgramIndexer& indexer,
                                const NgramCountConfig& config);

/// Exact N-gram counts of a 1-best phone sequence (baseline / ablation:
/// "1-best counting" vs lattice expected counting).
SparseVec sequence_ngram_counts(const std::vector<std::uint32_t>& phones,
                                const NgramIndexer& indexer);

/// Mergeable partial-count state for streaming/sharded supervector builds.
///
/// add() folds one segment's raw counts in; merge() folds another
/// accumulator in.  Summation is a deterministic index-sorted two-pointer
/// merge (left value + right value, in call order), so the same sequence of
/// add()/merge() calls always yields bit-identical totals.
class CountAccumulator {
 public:
  /// Fold one raw count vector in.
  void add(const SparseVec& counts);
  /// Fold another accumulator's totals in.
  void merge(const CountAccumulator& other);
  [[nodiscard]] bool empty() const noexcept { return merged_.empty(); }
  /// Accumulated totals so far (ready for SupervectorBuilder::
  /// build_from_counts).  Cheap snapshot: the internal state is unchanged,
  /// so checkpoints can be taken mid-stream.
  [[nodiscard]] SparseVec build() const { return merged_; }

 private:
  SparseVec merged_;
};

}  // namespace phonolid::phonotactic
