#include "phonotactic/ngram_lm.h"

#include <cmath>
#include <stdexcept>

#include "util/math_util.h"
#include "util/thread_pool.h"

namespace phonolid::phonotactic {

NgramLm::NgramLm(std::size_t num_phones, const NgramLmConfig& config)
    : config_(config), num_phones_(num_phones) {
  if (num_phones == 0 || num_phones >= (1u << 15)) {
    throw std::invalid_argument("NgramLm: phone alphabet out of range");
  }
  if (config.order == 0 || config.order > 4) {
    throw std::invalid_argument("NgramLm: order must be in 1..4");
  }
  counts_.resize(config.order + 1);
  types_.resize(config.order);
  context_totals_.resize(config.order);
}

std::uint64_t NgramLm::key(const std::uint32_t* phones, std::size_t n) const {
  // Length in the top bits, 15 bits per phone: supports order <= 4 and
  // alphabets < 2^15 without overflowing 64 bits.
  std::uint64_t k = n;
  for (std::size_t i = 0; i < n; ++i) {
    k = (k << 15) | (phones[i] + 1);
  }
  return k;
}

void NgramLm::add_sequence(const std::vector<std::uint32_t>& phones) {
  for (std::uint32_t p : phones) {
    if (p >= num_phones_) throw std::invalid_argument("NgramLm: bad phone id");
  }
  for (std::size_t n = 1; n <= config_.order; ++n) {
    if (phones.size() < n) break;
    for (std::size_t i = 0; i + n <= phones.size(); ++i) {
      auto& slot = counts_[n][key(&phones[i], n)];
      // Distinct-continuation bookkeeping: first time we see (h, w) the
      // history h gains one continuation type.
      if (n >= 2) {
        if (slot == 0.0) {
          types_[n - 1][key(&phones[i], n - 1)] += 1.0;
        }
        context_totals_[n - 1][key(&phones[i], n - 1)] += 1.0;
      }
      slot += 1.0;
      if (n == 1) total_unigrams_ += 1.0;
    }
  }
}

double NgramLm::probability(std::uint32_t w,
                            const std::vector<std::uint32_t>& history) const {
  // Recursive interpolated Witten-Bell; iterative from the shortest
  // history outwards for clarity.
  const double uniform = 1.0 / static_cast<double>(num_phones_);

  // Unigram.
  double p = uniform;
  {
    const auto it = counts_[1].find(key(&w, 1));
    const double c = (it != counts_[1].end()) ? it->second : 0.0;
    // Interpolate with uniform using the unigram type count as T.
    const double t = static_cast<double>(counts_[1].size()) + 1.0;
    const double denom = total_unigrams_ + t;
    if (denom > 0.0) p = (c + t * uniform) / denom;
  }

  // Higher orders, shortest history first.
  const std::size_t max_h =
      std::min(history.size(), config_.order - 1);
  for (std::size_t h = 1; h <= max_h; ++h) {
    // history suffix of length h followed by w.
    std::uint32_t gram[8];
    for (std::size_t i = 0; i < h; ++i) {
      gram[i] = history[history.size() - h + i];
    }
    gram[h] = w;
    const auto hist_it = context_totals_[h].find(key(gram, h));
    const double c_hist =
        (hist_it != context_totals_[h].end()) ? hist_it->second : 0.0;
    const auto type_it = types_[h].find(key(gram, h));
    const double t_hist = (type_it != types_[h].end()) ? type_it->second : 0.0;
    if (c_hist <= 0.0) {
      // Unseen history: fall back entirely to the lower order.
      continue;
    }
    const auto full_it = counts_[h + 1].find(key(gram, h + 1));
    const double c_full = (full_it != counts_[h + 1].end()) ? full_it->second : 0.0;
    p = (c_full + t_hist * p) / (c_hist + t_hist);
  }
  return std::max(p, 1e-12);
}

double NgramLm::score(const std::vector<std::uint32_t>& phones) const {
  if (phones.empty()) return 0.0;
  double logp = 0.0;
  std::vector<std::uint32_t> history;
  history.reserve(config_.order);
  for (std::uint32_t w : phones) {
    logp += std::log(probability(w, history));
    history.push_back(w);
    if (history.size() > config_.order - 1) {
      history.erase(history.begin());
    }
  }
  return logp / static_cast<double>(phones.size());
}

PrlmSystem PrlmSystem::train(
    const std::vector<std::vector<std::uint32_t>>& sequences,
    const std::vector<std::int32_t>& labels, std::size_t num_languages,
    std::size_t num_phones, const NgramLmConfig& config) {
  if (sequences.size() != labels.size() || num_languages == 0) {
    throw std::invalid_argument("PrlmSystem::train: bad inputs");
  }
  PrlmSystem system;
  system.models_.reserve(num_languages);
  for (std::size_t l = 0; l < num_languages; ++l) {
    system.models_.emplace_back(num_phones, config);
  }
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const auto l = static_cast<std::size_t>(labels[i]);
    if (labels[i] < 0 || l >= num_languages) {
      throw std::invalid_argument("PrlmSystem::train: bad label");
    }
    system.models_[l].add_sequence(sequences[i]);
  }
  return system;
}

void PrlmSystem::score(const std::vector<std::uint32_t>& phones,
                       std::span<float> out) const {
  if (out.size() != models_.size()) {
    throw std::invalid_argument("PrlmSystem::score: bad output span");
  }
  for (std::size_t l = 0; l < models_.size(); ++l) {
    out[l] = static_cast<float>(models_[l].score(phones));
  }
}

util::Matrix PrlmSystem::score_all(
    const std::vector<std::vector<std::uint32_t>>& sequences) const {
  util::Matrix scores(sequences.size(), models_.size());
  util::parallel_for(0, sequences.size(), [&](std::size_t i) {
    score(sequences[i], scores.row(i));
  });
  return scores;
}

}  // namespace phonolid::phonotactic
