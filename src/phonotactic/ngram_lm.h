// Phone N-gram language models — the classical PRLM backend.
//
// Before vector space modeling, phonotactic LR scored each decoded phone
// stream against per-language N-gram language models (Zissman 1996, the
// paper's reference [2]).  phonolid includes this as a historical baseline:
// interpolated Witten-Bell smoothing over phone N-grams, scored as average
// log-probability per phone.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/matrix.h"

namespace phonolid::phonotactic {

struct NgramLmConfig {
  std::size_t order = 3;
};

/// Interpolated Witten-Bell N-gram model over a phone alphabet.
class NgramLm {
 public:
  NgramLm() = default;
  NgramLm(std::size_t num_phones, const NgramLmConfig& config);

  [[nodiscard]] std::size_t order() const noexcept { return config_.order; }
  [[nodiscard]] std::size_t num_phones() const noexcept { return num_phones_; }

  /// Accumulate one training sequence.
  void add_sequence(const std::vector<std::uint32_t>& phones);

  /// log P(phones) / |phones| — length-normalised sequence log-probability.
  [[nodiscard]] double score(const std::vector<std::uint32_t>& phones) const;

  /// P(w | history): interpolated Witten-Bell probability.  `history` may
  /// be shorter than order-1 (backs off naturally).
  [[nodiscard]] double probability(std::uint32_t w,
                                   const std::vector<std::uint32_t>& history) const;

 private:
  /// Packs up to `order` phones into a 64-bit key (num_phones < 2^15).
  [[nodiscard]] std::uint64_t key(const std::uint32_t* phones,
                                  std::size_t n) const;

  NgramLmConfig config_;
  std::size_t num_phones_ = 0;
  /// Counts per n-gram order: counts_[n][key] = c(w_1..w_n).
  std::vector<std::unordered_map<std::uint64_t, double>> counts_;
  /// Distinct-continuation counts: types_[n][key(h)] = T(h) for |h| = n.
  std::vector<std::unordered_map<std::uint64_t, double>> types_;
  /// Continuation totals: context_totals_[n][key(h)] = sum_w c(h, w); this
  /// differs from the raw history count by sequence-final occurrences and
  /// is the denominator that makes Witten-Bell normalise exactly.
  std::vector<std::unordered_map<std::uint64_t, double>> context_totals_;
  /// Total unigram mass.
  double total_unigrams_ = 0.0;
};

/// PRLM language recognizer: one NgramLm per target language over one
/// front-end's 1-best phone streams.
class PrlmSystem {
 public:
  PrlmSystem() = default;

  /// Train from decoded phone sequences with language labels.
  static PrlmSystem train(
      const std::vector<std::vector<std::uint32_t>>& sequences,
      const std::vector<std::int32_t>& labels, std::size_t num_languages,
      std::size_t num_phones, const NgramLmConfig& config = {});

  [[nodiscard]] std::size_t num_languages() const noexcept {
    return models_.size();
  }

  /// Per-language length-normalised log-likelihoods.
  void score(const std::vector<std::uint32_t>& phones,
             std::span<float> out) const;

  [[nodiscard]] util::Matrix score_all(
      const std::vector<std::vector<std::uint32_t>>& sequences) const;

 private:
  std::vector<NgramLm> models_;
};

}  // namespace phonolid::phonotactic
