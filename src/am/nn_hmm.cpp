#include "am/nn_hmm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/logging.h"
#include "util/serialize.h"

namespace phonolid::am {

util::Matrix stack_context(const util::Matrix& features, std::size_t context) {
  if (context == 0) return features;
  const std::size_t frames = features.rows();
  const std::size_t dim = features.cols();
  const std::size_t width = 2 * context + 1;
  util::Matrix out(frames, dim * width);
  for (std::size_t t = 0; t < frames; ++t) {
    auto dst = out.row(t);
    for (std::size_t w = 0; w < width; ++w) {
      const auto offset = static_cast<std::ptrdiff_t>(t) +
                          static_cast<std::ptrdiff_t>(w) -
                          static_cast<std::ptrdiff_t>(context);
      const std::size_t src_t = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
          offset, 0, static_cast<std::ptrdiff_t>(frames) - 1));
      auto src = features.row(src_t);
      std::copy(src.begin(), src.end(),
                dst.begin() + static_cast<std::ptrdiff_t>(w * dim));
    }
  }
  return out;
}

NnHmmModel::NnHmmModel(HmmTopology topology, FeedForwardNet net,
                       std::vector<float> log_priors,
                       HmmTransitions transitions, std::size_t context,
                       float score_gain)
    : topology_(topology),
      net_(std::move(net)),
      log_priors_(std::move(log_priors)),
      transitions_(std::move(transitions)),
      context_(context),
      score_gain_(score_gain) {
  if (log_priors_.size() != topology_.num_states() ||
      net_.output_dim() != topology_.num_states()) {
    throw std::invalid_argument("NnHmmModel: state count mismatch");
  }
  if (net_.input_dim() % (2 * context_ + 1) != 0) {
    throw std::invalid_argument("NnHmmModel: context/input dim mismatch");
  }
}

void NnHmmModel::score(const util::Matrix& features, util::Matrix& out) const {
  score_range(features, 0, features.rows(), out);
}

void NnHmmModel::score_range(const util::Matrix& features, std::size_t begin,
                             std::size_t end, util::Matrix& out) const {
  // Context windows are stacked against the *whole* feature matrix (with
  // the same edge clamping as stack_context), so chunked scoring matches a
  // full-matrix score() bit-for-bit: the net and log-softmax are per-row.
  const std::size_t frames = features.rows();
  const std::size_t dim = features.cols();
  const std::size_t width = 2 * context_ + 1;
  util::Matrix stacked(end - begin, dim * width);
  for (std::size_t t = begin; t < end; ++t) {
    auto dst = stacked.row(t - begin);
    for (std::size_t w = 0; w < width; ++w) {
      const auto offset = static_cast<std::ptrdiff_t>(t) +
                          static_cast<std::ptrdiff_t>(w) -
                          static_cast<std::ptrdiff_t>(context_);
      const std::size_t src_t = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
          offset, 0, static_cast<std::ptrdiff_t>(frames) - 1));
      const auto src = features.row(src_t);
      std::copy(src.begin(), src.end(),
                dst.begin() + static_cast<std::ptrdiff_t>(w * dim));
    }
  }
  net_.log_posteriors(stacked, out);
  const std::size_t states = num_states();
  for (std::size_t t = 0; t < out.rows(); ++t) {
    auto row = out.row(t);
    for (std::size_t s = 0; s < states; ++s) {
      row[s] = score_gain_ * (row[s] - log_priors_[s]);
    }
  }
}

NnHmmModel train_nn_hmm(const std::vector<AlignedUtterance>& data,
                        std::size_t num_phones,
                        const NnHmmTrainConfig& config) {
  if (data.empty()) throw std::invalid_argument("train_nn_hmm: no data");
  HmmTopology topo{num_phones, config.states_per_phone};
  const std::size_t states = topo.num_states();
  const std::size_t dim = data[0].features.cols();
  const std::size_t stacked_dim = dim * (2 * config.context + 1);

  // Dev split at the utterance level (frame-level splits leak).
  const std::size_t dev_utts = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.dev_fraction *
                                  static_cast<double>(data.size())));
  const std::size_t train_utts = data.size() - dev_utts;
  if (train_utts == 0) throw std::invalid_argument("train_nn_hmm: too few utterances");

  std::size_t train_frames = 0, dev_frames = 0;
  for (std::size_t u = 0; u < data.size(); ++u) {
    (u < train_utts ? train_frames : dev_frames) += data[u].features.rows();
  }
  util::Matrix train_x(train_frames, stacked_dim), dev_x(dev_frames, stacked_dim);
  std::vector<std::uint32_t> train_y(train_frames), dev_y(dev_frames);
  std::vector<double> prior_counts(states, 1.0);  // +1 smoothing

  std::size_t ti = 0, di = 0;
  for (std::size_t u = 0; u < data.size(); ++u) {
    const StateLabels labels = uniform_state_labels(data[u], topo);
    const util::Matrix stacked = stack_context(data[u].features, config.context);
    for (std::size_t t = 0; t < labels.state.size(); ++t) {
      const auto s = static_cast<std::uint32_t>(labels.state[t]);
      auto src = stacked.row(t);
      if (u < train_utts) {
        std::copy(src.begin(), src.end(), train_x.row(ti).begin());
        train_y[ti++] = s;
        prior_counts[s] += 1.0;
      } else {
        std::copy(src.begin(), src.end(), dev_x.row(di).begin());
        dev_y[di++] = s;
      }
    }
  }

  util::Rng rng(util::derive_stream(config.seed, 0xD00D));
  FeedForwardNet net(stacked_dim, config.nn.hidden_sizes, states, rng);
  NnConfig nn_cfg = config.nn;
  nn_cfg.seed = util::derive_stream(config.seed, 0xFACE);
  const double dev_acc =
      train_net(net, train_x, train_y, dev_x, dev_y, nn_cfg);
  PHONOLID_INFO("am") << "trained NN-HMM (" << config.nn.hidden_sizes.size()
                      << " hidden layers, context +-" << config.context
                      << "): dev frame accuracy " << dev_acc;

  double total = 0.0;
  for (double c : prior_counts) total += c;
  std::vector<float> log_priors(states);
  for (std::size_t s = 0; s < states; ++s) {
    log_priors[s] = static_cast<float>(std::log(prior_counts[s] / total));
  }

  // Transitions from the uniform alignment run lengths.
  std::vector<std::size_t> self_counts(states, 0), adv_counts(states, 0);
  for (const auto& utt : data) {
    const StateLabels labels = uniform_state_labels(utt, topo);
    for (std::size_t t = 0; t + 1 < labels.state.size(); ++t) {
      if (labels.state[t] == labels.state[t + 1]) {
        ++self_counts[labels.state[t]];
      } else {
        ++adv_counts[labels.state[t]];
      }
    }
  }
  return NnHmmModel(topo, std::move(net), std::move(log_priors),
                    HmmTransitions::estimate(self_counts, adv_counts, 3.0),
                    config.context, config.score_gain);
}

void NnHmmModel::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic("PNHM", 1);
  w.write_u64(topology_.num_phones);
  w.write_u64(topology_.states_per_phone);
  w.write_u64(context_);
  w.write_f32(score_gain_);
  w.write_f32_vec(log_priors_);
  w.write_f32_vec(transitions_.log_self);
  w.write_f32_vec(transitions_.log_advance);
  net_.serialize(out);
}

NnHmmModel NnHmmModel::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic("PNHM", 1);
  HmmTopology topo;
  topo.num_phones = r.read_u64();
  topo.states_per_phone = r.read_u64();
  const std::size_t context = r.read_u64();
  const float gain = r.read_f32();
  auto priors = r.read_f32_vec();
  HmmTransitions trans;
  trans.log_self = r.read_f32_vec();
  trans.log_advance = r.read_f32_vec();
  FeedForwardNet net = FeedForwardNet::deserialize(in);
  return NnHmmModel(topo, std::move(net), std::move(priors), std::move(trans),
                    context, gain);
}

}  // namespace phonolid::am
