#include "am/gmm_hmm.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "util/logging.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace phonolid::am {

AlignedUtterance align_utterance(const corpus::Utterance& utt,
                                 const dsp::FeaturePipeline& pipeline,
                                 const PhoneSetMap& phone_map) {
  AlignedUtterance out;
  out.features = pipeline.process(utt.samples);
  const std::size_t frames = out.features.rows();
  if (frames == 0 || utt.alignment.empty()) return out;

  const auto& cfg = pipeline.config();
  const std::size_t frame_len = (cfg.kind == dsp::FeatureKind::kMfcc)
                                    ? cfg.mfcc.frame_length
                                    : cfg.plp.frame_length;
  const std::size_t frame_shift = (cfg.kind == dsp::FeatureKind::kMfcc)
                                      ? cfg.mfcc.frame_shift
                                      : cfg.plp.frame_shift;

  // Assign each frame to the ground-truth phone covering its centre sample,
  // then collapse runs into segments.
  std::size_t seg_phone = std::numeric_limits<std::size_t>::max();
  std::size_t align_pos = 0;
  for (std::size_t t = 0; t < frames; ++t) {
    const std::size_t center = t * frame_shift + frame_len / 2;
    while (align_pos + 1 < utt.alignment.size() &&
           center >= utt.alignment[align_pos].end_sample) {
      ++align_pos;
    }
    const std::size_t fe_phone =
        phone_map.map(utt.alignment[align_pos].phone);
    if (out.phone_seq.empty() || fe_phone != seg_phone ||
        // A new ground-truth segment of the same front-end phone also opens
        // a new segment (two real phones may map to one front-end phone).
        center >= utt.alignment[align_pos].end_sample) {
      if (!out.phone_seq.empty()) out.seg_end.push_back(t);
      out.phone_seq.push_back(fe_phone);
      out.seg_begin.push_back(t);
      seg_phone = fe_phone;
    }
  }
  out.seg_end.push_back(frames);
  return out;
}

GmmHmmModel::GmmHmmModel(HmmTopology topology, std::vector<DiagGmm> state_gmms,
                         HmmTransitions transitions, std::size_t feature_dim)
    : topology_(topology),
      state_gmms_(std::move(state_gmms)),
      transitions_(std::move(transitions)),
      feature_dim_(feature_dim) {
  if (state_gmms_.size() != topology_.num_states()) {
    throw std::invalid_argument("GmmHmmModel: state count mismatch");
  }
  rebuild_scorer();
}

void GmmHmmModel::rebuild_scorer() {
  // Pack every component of every state into one matrix so a whole
  // utterance scores against all states as a single GEMM.
  std::size_t total = 0;
  for (const auto& gmm : state_gmms_) total += gmm.num_components();
  la::BatchedGaussians::Builder builder(feature_dim_, total);
  seg_begin_.clear();
  seg_begin_.reserve(state_gmms_.size() + 1);
  seg_begin_.push_back(0);
  for (const auto& gmm : state_gmms_) {
    for (std::size_t i = 0; i < gmm.num_components(); ++i) {
      builder.add(gmm.component(i).mean(), gmm.component(i).var(),
                  gmm.log_weights()[i]);
    }
    seg_begin_.push_back(seg_begin_.back() + gmm.num_components());
  }
  all_components_ = builder.build();
}

void GmmHmmModel::score(const util::Matrix& features, util::Matrix& out) const {
  const std::size_t frames = features.rows();
  const std::size_t states = num_states();
  out.resize(frames, states);
  util::Matrix comp_scores;
  all_components_.score(features, comp_scores);
  for (std::size_t t = 0; t < frames; ++t) {
    la::logsumexp_segments(comp_scores.row(t), seg_begin_, out.row(t));
  }
}

double GmmHmmModel::score_flops_per_frame() const noexcept {
  return all_components_.flops_per_frame();
}

StateLabels uniform_state_labels(const AlignedUtterance& utt,
                                 const HmmTopology& topology) {
  StateLabels labels;
  labels.state.resize(utt.features.rows());
  const std::size_t sp = topology.states_per_phone;
  for (std::size_t seg = 0; seg < utt.phone_seq.size(); ++seg) {
    const std::size_t begin = utt.seg_begin[seg];
    const std::size_t end = utt.seg_end[seg];
    const std::size_t len = end - begin;
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t pos = std::min(sp - 1, i * sp / std::max<std::size_t>(len, 1));
      labels.state[begin + i] = topology.state_of(utt.phone_seq[seg], pos);
    }
  }
  return labels;
}

StateLabels forced_align(const AlignedUtterance& utt, const GmmHmmModel& model) {
  const HmmTopology& topo = model.topology();
  const std::size_t sp = topo.states_per_phone;
  const std::size_t frames = utt.features.rows();
  // Expanded linear state sequence: every segment contributes sp states.
  const std::size_t chain = utt.phone_seq.size() * sp;
  if (chain == 0 || frames < chain) {
    return uniform_state_labels(utt, topo);
  }

  util::Matrix scores;
  model.score(utt.features, scores);

  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  // delta[t][j]: best log-prob reaching chain position j at frame t.
  util::Matrix delta(frames, chain, kNegInf);
  std::vector<std::uint8_t> from_prev(frames * chain, 0);

  const auto global_state = [&](std::size_t j) {
    return topo.state_of(utt.phone_seq[j / sp], j % sp);
  };

  delta(0, 0) = scores(0, global_state(0));
  const auto& trans = model.transitions();
  for (std::size_t t = 1; t < frames; ++t) {
    // Position j can only be reached from j or j-1 (left-to-right chain).
    const std::size_t j_hi = std::min(chain - 1, t);
    const std::size_t j_lo = (frames - t <= chain)
                                 ? chain - (frames - t)
                                 : 0;  // must still be able to finish
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const std::size_t s = global_state(j);
      float stay = kNegInf, advance = kNegInf;
      if (delta(t - 1, j) != kNegInf) {
        stay = delta(t - 1, j) + trans.log_self[s];
      }
      if (j > 0 && delta(t - 1, j - 1) != kNegInf) {
        advance = delta(t - 1, j - 1) + trans.log_advance[global_state(j - 1)];
      }
      if (stay == kNegInf && advance == kNegInf) continue;
      if (advance > stay) {
        delta(t, j) = advance + scores(t, s);
        from_prev[t * chain + j] = 1;
      } else {
        delta(t, j) = stay + scores(t, s);
        from_prev[t * chain + j] = 0;
      }
    }
  }

  if (delta(frames - 1, chain - 1) == kNegInf) {
    return uniform_state_labels(utt, topo);
  }
  StateLabels labels;
  labels.state.resize(frames);
  std::size_t j = chain - 1;
  for (std::size_t t = frames; t-- > 0;) {
    labels.state[t] = global_state(j);
    if (t > 0 && from_prev[t * chain + j]) --j;
  }
  return labels;
}

GmmHmmModel train_gmm_hmm(const std::vector<AlignedUtterance>& data,
                          std::size_t num_phones,
                          const GmmHmmTrainConfig& config) {
  if (data.empty()) throw std::invalid_argument("train_gmm_hmm: no data");
  const std::size_t dim = data[0].features.cols();
  HmmTopology topo{num_phones, config.states_per_phone};
  const std::size_t states = topo.num_states();

  // Initial labels: uniform splits.
  std::vector<StateLabels> labels(data.size());
  for (std::size_t u = 0; u < data.size(); ++u) {
    labels[u] = uniform_state_labels(data[u], topo);
  }

  GmmHmmModel model;
  for (std::size_t pass = 0; pass <= config.realign_passes; ++pass) {
    // Gather frames per state.
    std::vector<std::vector<std::size_t>> frame_refs(states);  // (utt<<20)|t
    for (std::size_t u = 0; u < data.size(); ++u) {
      for (std::size_t t = 0; t < labels[u].state.size(); ++t) {
        frame_refs[labels[u].state[t]].push_back((u << 20) | t);
      }
    }

    // Average frames per occupied state -> transition prior.
    std::vector<std::size_t> self_counts(states, 0), adv_counts(states, 0);
    for (std::size_t u = 0; u < data.size(); ++u) {
      const auto& st = labels[u].state;
      for (std::size_t t = 0; t + 1 < st.size(); ++t) {
        if (st[t] == st[t + 1]) {
          ++self_counts[st[t]];
        } else {
          ++adv_counts[st[t]];
        }
      }
    }

    std::vector<DiagGmm> gmms(states);
    util::parallel_for(0, states, [&](std::size_t s) {
      const auto& refs = frame_refs[s];
      GmmTrainConfig gc = config.gmm;
      gc.seed = util::derive_stream(config.seed, 0xC000 + s);
      if (refs.empty()) {
        // Unobserved state: train a broad 1-component model on a subsample
        // of everything so decoding scores stay finite.
        util::Matrix pool(std::min<std::size_t>(512, data[0].features.rows()), dim);
        for (std::size_t i = 0; i < pool.rows(); ++i) {
          auto src = data[0].features.row(i % data[0].features.rows());
          std::copy(src.begin(), src.end(), pool.row(i).begin());
        }
        gc.num_components = 1;
        gmms[s].train(pool, gc);
        return;
      }
      util::Matrix frames(refs.size(), dim);
      for (std::size_t i = 0; i < refs.size(); ++i) {
        const std::size_t u = refs[i] >> 20;
        const std::size_t t = refs[i] & 0xFFFFF;
        auto src = data[u].features.row(t);
        std::copy(src.begin(), src.end(), frames.row(i).begin());
      }
      gmms[s].train(frames, gc);
    });

    HmmTransitions trans = HmmTransitions::estimate(self_counts, adv_counts, 3.0);
    model = GmmHmmModel(topo, std::move(gmms), std::move(trans), dim);

    if (pass < config.realign_passes) {
      util::parallel_for(0, data.size(), [&](std::size_t u) {
        labels[u] = forced_align(data[u], model);
      });
    }
  }
  PHONOLID_INFO("am") << "trained GMM-HMM: " << num_phones << " phones, "
                      << states << " states, dim " << dim;
  return model;
}

void GmmHmmModel::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic("PGHM", 1);
  w.write_u64(topology_.num_phones);
  w.write_u64(topology_.states_per_phone);
  w.write_u64(feature_dim_);
  w.write_f32_vec(transitions_.log_self);
  w.write_f32_vec(transitions_.log_advance);
  for (const auto& gmm : state_gmms_) gmm.serialize(out);
}

GmmHmmModel GmmHmmModel::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic("PGHM", 1);
  HmmTopology topo;
  topo.num_phones = r.read_u64();
  topo.states_per_phone = r.read_u64();
  const std::size_t dim = r.read_u64();
  HmmTransitions trans;
  trans.log_self = r.read_f32_vec();
  trans.log_advance = r.read_f32_vec();
  if (trans.log_self.size() != topo.num_states() ||
      trans.log_advance.size() != topo.num_states()) {
    throw util::SerializeError("GmmHmmModel: transition size mismatch");
  }
  std::vector<DiagGmm> gmms;
  gmms.reserve(topo.num_states());
  for (std::size_t s = 0; s < topo.num_states(); ++s) {
    gmms.push_back(DiagGmm::deserialize(in));
  }
  return GmmHmmModel(topo, std::move(gmms), std::move(trans), dim);
}

}  // namespace phonolid::am
