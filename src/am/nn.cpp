#include "am/nn.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "la/kernels.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/serialize.h"

namespace phonolid::am {

FeedForwardNet::FeedForwardNet(std::size_t input_dim,
                               const std::vector<std::size_t>& hidden,
                               std::size_t output_dim, util::Rng& rng) {
  std::vector<std::size_t> sizes;
  sizes.push_back(input_dim);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(output_dim);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    const std::size_t in = sizes[l];
    const std::size_t out = sizes[l + 1];
    util::Matrix w(out, in);
    const double scale = std::sqrt(6.0 / static_cast<double>(in + out));
    for (std::size_t i = 0; i < out; ++i) {
      for (std::size_t j = 0; j < in; ++j) {
        w(i, j) = static_cast<float>(rng.uniform(-scale, scale));
      }
    }
    weights_.push_back(std::move(w));
    biases_.emplace_back(out, 0.0f);
    vel_w_.emplace_back(out, in, 0.0f);
    vel_b_.emplace_back(out, 0.0f);
  }
}

std::size_t FeedForwardNet::input_dim() const noexcept {
  return weights_.empty() ? 0 : weights_.front().cols();
}
std::size_t FeedForwardNet::output_dim() const noexcept {
  return weights_.empty() ? 0 : weights_.back().rows();
}
std::size_t FeedForwardNet::num_parameters() const noexcept {
  std::size_t n = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    n += weights_[l].size() + biases_[l].size();
  }
  return n;
}

void FeedForwardNet::forward(const util::Matrix& in,
                             std::vector<util::Matrix>& activations) const {
  const std::size_t layers = weights_.size();
  activations.resize(layers + 1);
  activations[0] = in;
  for (std::size_t l = 0; l < layers; ++l) {
    // One fused GEMM per layer: A = sigmoid(X W^T + b) with the bias and
    // activation applied in the kernel epilogue (logits on the last layer).
    la::gemm_nt(activations[l], weights_[l], activations[l + 1], biases_[l],
                l + 1 < layers ? la::Epilogue::kBiasSigmoid
                               : la::Epilogue::kBias);
  }
}

void FeedForwardNet::log_posteriors(const util::Matrix& in,
                                    util::Matrix& out) const {
  std::vector<util::Matrix> acts;
  forward(in, acts);
  out = std::move(acts.back());
  for (std::size_t b = 0; b < out.rows(); ++b) {
    util::log_softmax_inplace(out.row(b));
  }
}

double FeedForwardNet::train_batch(const util::Matrix& batch_x,
                                   const std::vector<std::uint32_t>& batch_y,
                                   double learning_rate, double momentum,
                                   double l2) {
  assert(batch_x.rows() == batch_y.size());
  const std::size_t batch = batch_x.rows();
  const std::size_t layers = weights_.size();
  if (batch == 0) return 0.0;

  std::vector<util::Matrix> acts;
  forward(batch_x, acts);

  // delta at the output: softmax - onehot (softmax cross-entropy gradient).
  util::Matrix delta = acts.back();  // logits
  double loss = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    auto row = delta.row(b);
    const float lse = util::log_sum_exp(
        std::span<const float>(row.data(), row.size()));
    loss -= (row[batch_y[b]] - lse);
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = std::exp(row[j] - lse);
    }
    row[batch_y[b]] -= 1.0f;
  }
  loss /= static_cast<double>(batch);

  const float lr = static_cast<float>(learning_rate);
  const float mom = static_cast<float>(momentum);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  util::Matrix grad_w;
  for (std::size_t l = layers; l-- > 0;) {
    // Gradient wrt weights as one GEMM: (1/B) delta^T acts[l].
    la::gemm_tn(delta, acts[l], grad_w, inv_batch);
    std::vector<float> grad_b(weights_[l].rows(), 0.0f);
    for (std::size_t b = 0; b < batch; ++b) {
      const float* __restrict__ drow = delta.row(b).data();
      for (std::size_t j = 0; j < grad_b.size(); ++j) {
        grad_b[j] += inv_batch * drow[j];
      }
    }
    // Backprop delta to the previous layer (skip for the input layer):
    // next_delta = (delta W) .* a(1-a), the product as one GEMM.
    util::Matrix next_delta;
    if (l > 0) {
      la::gemm(delta, weights_[l], next_delta);
      for (std::size_t b = 0; b < batch; ++b) {
        float* __restrict__ nrow = next_delta.row(b).data();
        const float* __restrict__ arow = acts[l].row(b).data();
        const std::size_t cols = next_delta.cols();
        // Sigmoid derivative a * (1 - a).
        for (std::size_t j = 0; j < cols; ++j) {
          nrow[j] *= arow[j] * (1.0f - arow[j]);
        }
      }
    }
    // Momentum SGD with L2.
    const float l2f = static_cast<float>(l2);
    float* w = weights_[l].data();
    float* vw = vel_w_[l].data();
    const float* gw = grad_w.data();
    const std::size_t wn = weights_[l].size();
    for (std::size_t i = 0; i < wn; ++i) {
      vw[i] = mom * vw[i] - lr * (gw[i] + l2f * w[i]);
      w[i] += vw[i];
    }
    for (std::size_t j = 0; j < grad_b.size(); ++j) {
      vel_b_[l][j] = mom * vel_b_[l][j] - lr * grad_b[j];
      biases_[l][j] += vel_b_[l][j];
    }
    delta = std::move(next_delta);
  }
  return loss;
}

double FeedForwardNet::frame_accuracy(const util::Matrix& x,
                                      const std::vector<std::uint32_t>& y) const {
  assert(x.rows() == y.size());
  if (x.rows() == 0) return 0.0;
  util::Matrix logp;
  log_posteriors(x, logp);
  std::size_t correct = 0;
  for (std::size_t b = 0; b < x.rows(); ++b) {
    if (util::argmax(logp.row(b)) == y[b]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.rows());
}

double train_net(FeedForwardNet& net, const util::Matrix& train_x,
                 const std::vector<std::uint32_t>& train_y,
                 const util::Matrix& dev_x,
                 const std::vector<std::uint32_t>& dev_y,
                 const NnConfig& config) {
  if (train_x.rows() != train_y.size()) {
    throw std::invalid_argument("train_net: label count mismatch");
  }
  PHONOLID_SPAN("nn_train");
  const std::size_t n = train_x.rows();
  util::Rng rng(config.seed);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  // SGD spends ~6 multiply-adds per weight per frame (forward 2, grad 2,
  // backprop 2); used for the per-epoch GFLOP/s counter.
  const double flops_per_epoch =
      6.0 * static_cast<double>(net.num_parameters()) * static_cast<double>(n);

  double lr = config.learning_rate;
  std::size_t halvings = 0;
  double best_dev = net.frame_accuracy(dev_x, dev_y);
  util::Matrix batch_x;
  std::vector<std::uint32_t> batch_y;

  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    const auto epoch_start = std::chrono::steady_clock::now();
    rng.shuffle(order);
    double total_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(n, start + config.batch_size);
      batch_x.resize(end - start, train_x.cols());
      batch_y.resize(end - start);
      for (std::size_t i = start; i < end; ++i) {
        auto src = train_x.row(order[i]);
        std::copy(src.begin(), src.end(), batch_x.row(i - start).begin());
        batch_y[i - start] = train_y[order[i]];
      }
      total_loss += net.train_batch(batch_x, batch_y, lr, config.momentum,
                                    config.l2);
      ++batches;
    }
    const double epoch_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_start)
            .count();
    if (epoch_s > 0.0) {
      PHONOLID_COUNTER_SAMPLE("nn.train_gflops",
                              flops_per_epoch / epoch_s / 1e9);
    }
    const double dev_acc = net.frame_accuracy(dev_x, dev_y);
    PHONOLID_DEBUG("nn") << "epoch " << epoch << " loss "
                         << total_loss / static_cast<double>(std::max<std::size_t>(batches, 1))
                         << " dev acc " << dev_acc << " lr " << lr;
    if (dev_acc < best_dev) {
      lr *= 0.5;  // the paper's schedule: halve on dev regression
      if (++halvings > config.max_lr_halvings) break;
    } else {
      best_dev = dev_acc;
    }
  }
  return best_dev;
}

void FeedForwardNet::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic("PNET", 1);
  w.write_u64(weights_.size());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    w.write_u64(weights_[l].rows());
    w.write_u64(weights_[l].cols());
    std::vector<float> flat(weights_[l].data(),
                            weights_[l].data() + weights_[l].size());
    w.write_f32_vec(flat);
    w.write_f32_vec(biases_[l]);
  }
}

FeedForwardNet FeedForwardNet::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic("PNET", 1);
  const std::uint64_t layers = r.read_u64();
  FeedForwardNet net;
  for (std::uint64_t l = 0; l < layers; ++l) {
    const std::uint64_t rows = r.read_u64();
    const std::uint64_t cols = r.read_u64();
    const auto flat = r.read_f32_vec();
    if (flat.size() != rows * cols) {
      throw util::SerializeError("net weight size mismatch");
    }
    util::Matrix w(rows, cols);
    std::copy(flat.begin(), flat.end(), w.data());
    net.weights_.push_back(std::move(w));
    net.biases_.push_back(r.read_f32_vec());
    net.vel_w_.emplace_back(rows, cols, 0.0f);
    net.vel_b_.emplace_back(net.biases_.back().size(), 0.0f);
  }
  return net;
}

}  // namespace phonolid::am
