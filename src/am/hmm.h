// HMM topology shared by every front-end family.
//
// Each front-end phone is a left-to-right HMM with `states_per_phone`
// emitting states (paper: 3-state tied-state left-to-right models).  States
// are numbered globally: state = phone * states_per_phone + position.
// The acoustic-model interface is a per-frame vector of state
// log-likelihoods; the decoder is agnostic to whether those come from GMMs
// or scaled NN posteriors.
#pragma once

#include <cstddef>
#include <vector>

#include "util/matrix.h"

namespace phonolid::am {

struct HmmTopology {
  std::size_t num_phones = 0;
  std::size_t states_per_phone = 3;

  [[nodiscard]] std::size_t num_states() const noexcept {
    return num_phones * states_per_phone;
  }
  [[nodiscard]] std::size_t state_of(std::size_t phone,
                                     std::size_t position) const noexcept {
    return phone * states_per_phone + position;
  }
  [[nodiscard]] std::size_t phone_of(std::size_t state) const noexcept {
    return state / states_per_phone;
  }
  [[nodiscard]] std::size_t position_of(std::size_t state) const noexcept {
    return state % states_per_phone;
  }
};

/// Per-state self-loop/advance log-probabilities, estimated from alignments.
struct HmmTransitions {
  std::vector<float> log_self;     // log P(stay)
  std::vector<float> log_advance;  // log P(move to next position / exit)

  /// Initialise from expected state occupancy `mean_frames_per_state`.
  static HmmTransitions uniform(std::size_t num_states,
                                double mean_frames_per_state);

  /// ML re-estimation from (self_count, advance_count) pairs; counts of zero
  /// fall back to the prior mean occupancy.
  static HmmTransitions estimate(const std::vector<std::size_t>& self_counts,
                                 const std::vector<std::size_t>& advance_counts,
                                 double fallback_mean_frames);
};

/// Abstract emission model: fills per-state log-likelihoods for each frame.
class AcousticModel {
 public:
  virtual ~AcousticModel() = default;

  [[nodiscard]] virtual std::size_t num_states() const noexcept = 0;
  [[nodiscard]] virtual std::size_t feature_dim() const noexcept = 0;

  /// `features`: frames x dim.  `out`: frames x num_states, filled with
  /// per-state log-likelihoods (up to a per-frame constant, which cancels
  /// in Viterbi/lattice posteriors).
  virtual void score(const util::Matrix& features, util::Matrix& out) const = 0;

  /// Frames of temporal context score() reads on each side of a row
  /// (0 for frame-independent models such as GMMs).
  [[nodiscard]] virtual std::size_t context_frames() const noexcept {
    return 0;
  }

  /// Scores rows [begin, end) of the whole-utterance `features` matrix into
  /// `out` ((end - begin) x num_states).  Context rows are read from the
  /// neighbours inside `features` (clamped at the matrix edges), so chunked
  /// calls over a fixed matrix reproduce score() bit-for-bit — the streaming
  /// decode path relies on this.  The default slices rows and delegates to
  /// score(), which is exact for context-free models.
  virtual void score_range(const util::Matrix& features, std::size_t begin,
                           std::size_t end, util::Matrix& out) const;

  /// Approximate floating-point operations one score() call spends per
  /// frame, for GFLOP/s observability counters.  0 when unknown.
  [[nodiscard]] virtual double score_flops_per_frame() const noexcept {
    return 0.0;
  }
};

}  // namespace phonolid::am
