// Hybrid NN-HMM acoustic model.
//
// The network emits state posteriors p(s|x); dividing by the state prior
// p(s) (estimated from the training alignment) yields a scaled likelihood
// p(x|s)/p(x), which is what the Viterbi/lattice decoder consumes — the
// standard hybrid recipe (Bourlard & Morgan) used by both the BUT ANN-HMM
// and the Tsinghua DNN-HMM front-ends in the paper.
#pragma once

#include <iosfwd>
#include <vector>

#include "am/gmm_hmm.h"
#include "am/hmm.h"
#include "am/nn.h"

namespace phonolid::am {

/// Stack ±context neighbouring frames onto each row (clamped at utterance
/// edges): frames x dim -> frames x dim*(2*context+1).  The standard hybrid
/// input windowing (the paper's TRAPs ANN and DNN front-ends both consume
/// temporal context).
util::Matrix stack_context(const util::Matrix& features, std::size_t context);

class NnHmmModel final : public AcousticModel {
 public:
  NnHmmModel() = default;
  NnHmmModel(HmmTopology topology, FeedForwardNet net,
             std::vector<float> log_priors, HmmTransitions transitions,
             std::size_t context, float score_gain = 1.0f);

  [[nodiscard]] std::size_t num_states() const noexcept override {
    return topology_.num_states();
  }
  /// Per-frame (unstacked) feature dimensionality.
  [[nodiscard]] std::size_t feature_dim() const noexcept override {
    return net_.input_dim() / (2 * context_ + 1);
  }
  [[nodiscard]] std::size_t context() const noexcept { return context_; }
  [[nodiscard]] std::size_t context_frames() const noexcept override {
    return context_;
  }
  void score(const util::Matrix& features, util::Matrix& out) const override;
  void score_range(const util::Matrix& features, std::size_t begin,
                   std::size_t end, util::Matrix& out) const override;
  [[nodiscard]] double score_flops_per_frame() const noexcept override {
    // One forward pass: ~2 flops per weight per frame.
    return 2.0 * static_cast<double>(net_.num_parameters());
  }

  [[nodiscard]] const HmmTopology& topology() const noexcept { return topology_; }
  [[nodiscard]] const HmmTransitions& transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] const FeedForwardNet& net() const noexcept { return net_; }

  void serialize(std::ostream& out) const;
  static NnHmmModel deserialize(std::istream& in);

 private:
  HmmTopology topology_;
  FeedForwardNet net_;
  std::vector<float> log_priors_;
  HmmTransitions transitions_;
  std::size_t context_ = 0;
  float score_gain_ = 1.0f;
};

struct NnHmmTrainConfig {
  std::size_t states_per_phone = 3;
  NnConfig nn;
  /// Frames of temporal context on each side of the centre frame.
  std::size_t context = 2;
  /// Acoustic gain applied to the scaled log-posteriors; lifts the hybrid
  /// scores to a dynamic range comparable with GMM log-likelihoods so the
  /// shared decoder/beam settings behave uniformly across families.
  float score_gain = 1.0f;
  /// Fraction of utterances held out as the dev set for lr scheduling.
  double dev_fraction = 0.1;
  std::uint64_t seed = 1;
};

/// Train a hybrid model from aligned utterances (uniform state alignment,
/// as used for flat-start hybrid systems).
NnHmmModel train_nn_hmm(const std::vector<AlignedUtterance>& data,
                        std::size_t num_phones, const NnHmmTrainConfig& config);

}  // namespace phonolid::am
