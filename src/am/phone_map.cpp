#include "am/phone_map.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.h"

namespace phonolid::am {

PhoneSetMap::PhoneSetMap(std::vector<std::size_t> universal_to_frontend,
                         std::size_t num_frontend_phones)
    : map_(std::move(universal_to_frontend)),
      num_frontend_phones_(num_frontend_phones) {
  for (std::size_t m : map_) {
    if (m >= num_frontend_phones_) {
      throw std::invalid_argument("PhoneSetMap: index out of range");
    }
  }
}

PhoneSetMap build_phone_map(const corpus::PhoneInventory& inventory,
                            std::size_t num_frontend_phones,
                            std::uint64_t seed) {
  const std::size_t n = inventory.size();
  if (num_frontend_phones == 0) {
    throw std::invalid_argument("build_phone_map: need at least one phone");
  }
  if (num_frontend_phones >= n) {
    // Identity map (front-end at least as fine-grained as the universe).
    std::vector<std::size_t> identity(n);
    for (std::size_t i = 0; i < n; ++i) identity[i] = i;
    return PhoneSetMap(std::move(identity), n);
  }

  util::Rng rng(seed);
  // Feature space: log-formants plus voicing/noise, mildly jittered per
  // front-end so equal-sized front-ends still cluster differently.
  const std::size_t dim = 5;
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = inventory.phone(i);
    points[i][0] = std::log(p.formant_hz[0]) + rng.gaussian(0.0, 0.05);
    points[i][1] = std::log(p.formant_hz[1]) + rng.gaussian(0.0, 0.05);
    points[i][2] = std::log(p.formant_hz[2]) + rng.gaussian(0.0, 0.05);
    points[i][3] = (p.voiced ? 1.0 : 0.0) + rng.gaussian(0.0, 0.1);
    points[i][4] = p.noise_fraction + rng.gaussian(0.0, 0.05);
  }

  // K-means with distinct random seeds.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::vector<double>> centroids(num_frontend_phones);
  for (std::size_t c = 0; c < num_frontend_phones; ++c) {
    centroids[c] = points[order[c]];
  }

  std::vector<std::size_t> assign(n, 0);
  for (std::size_t iter = 0; iter < 12; ++iter) {
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < num_frontend_phones; ++c) {
        double dist = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
          const double diff = points[i][d] - centroids[c][d];
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      assign[i] = best_c;
    }
    std::vector<std::size_t> counts(num_frontend_phones, 0);
    for (auto& c : centroids) std::fill(c.begin(), c.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[assign[i]];
      for (std::size_t d = 0; d < dim; ++d) centroids[assign[i]][d] += points[i][d];
    }
    for (std::size_t c = 0; c < num_frontend_phones; ++c) {
      if (counts[c] == 0) {
        centroids[c] = points[rng.uniform_index(n)];
      } else {
        for (auto& v : centroids[c]) v /= static_cast<double>(counts[c]);
      }
    }
  }

  // Guarantee every front-end phone is non-empty: steal the farthest point
  // of the largest cluster for each empty one.
  std::vector<std::size_t> counts(num_frontend_phones, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts[assign[i]];
  for (std::size_t c = 0; c < num_frontend_phones; ++c) {
    if (counts[c] > 0) continue;
    std::size_t largest = 0;
    for (std::size_t j = 1; j < num_frontend_phones; ++j) {
      if (counts[j] > counts[largest]) largest = j;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (assign[i] == largest) {
        assign[i] = c;
        --counts[largest];
        ++counts[c];
        break;
      }
    }
  }
  return PhoneSetMap(std::move(assign), num_frontend_phones);
}

}  // namespace phonolid::am
