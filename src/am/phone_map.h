// Front-end phone sets.
//
// The paper's front-ends have *different phone inventories* (CZ 43, EN 47,
// RU 50, HU 59, MA 64): each recognizer carves the acoustic space its own
// way, which is where the complementary information in PPRVSM comes from.
// We reproduce this by giving each front-end a many-to-one map from the
// universal inventory onto its own phone set, built by k-means clustering
// of phone prototypes in formant space with a front-end-specific random
// restart — so two front-ends of the same size still split phones
// differently.
#pragma once

#include <cstdint>
#include <vector>

#include "corpus/phone_inventory.h"

namespace phonolid::am {

class PhoneSetMap {
 public:
  PhoneSetMap() = default;
  PhoneSetMap(std::vector<std::size_t> universal_to_frontend,
              std::size_t num_frontend_phones);

  [[nodiscard]] std::size_t num_frontend_phones() const noexcept {
    return num_frontend_phones_;
  }
  [[nodiscard]] std::size_t num_universal_phones() const noexcept {
    return map_.size();
  }
  [[nodiscard]] std::size_t map(std::size_t universal_phone) const {
    return map_.at(universal_phone);
  }
  [[nodiscard]] const std::vector<std::size_t>& mapping() const noexcept {
    return map_;
  }

 private:
  std::vector<std::size_t> map_;
  std::size_t num_frontend_phones_ = 0;
};

/// Cluster the universal inventory into `num_frontend_phones` front-end
/// phones.  Deterministic in `seed`; every front-end phone is non-empty.
PhoneSetMap build_phone_map(const corpus::PhoneInventory& inventory,
                            std::size_t num_frontend_phones,
                            std::uint64_t seed);

}  // namespace phonolid::am
