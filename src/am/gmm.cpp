#include "am/gmm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "la/kernels.h"
#include "util/math_util.h"
#include "util/serialize.h"

namespace phonolid::am {

DiagGaussian::DiagGaussian(std::vector<float> mean, std::vector<float> var) {
  set(std::move(mean), std::move(var));
}

void DiagGaussian::set(std::vector<float> mean, std::vector<float> var) {
  if (mean.size() != var.size()) {
    throw std::invalid_argument("DiagGaussian: mean/var size mismatch");
  }
  mean_ = std::move(mean);
  var_ = std::move(var);
  for (auto& v : var_) v = std::max(v, kVarFloor);
  refresh_constant();
}

void DiagGaussian::refresh_constant() {
  inv_var_.resize(var_.size());
  double log_det = 0.0;
  for (std::size_t d = 0; d < var_.size(); ++d) {
    inv_var_[d] = 1.0f / var_[d];
    log_det += std::log(static_cast<double>(var_[d]));
  }
  log_const_ = static_cast<float>(
      -0.5 * (static_cast<double>(var_.size()) * std::log(2.0 * std::numbers::pi) +
              log_det));
}

float DiagGaussian::log_likelihood(std::span<const float> x) const noexcept {
  assert(x.size() == mean_.size());
  float quad = 0.0f;
  for (std::size_t d = 0; d < x.size(); ++d) {
    const float diff = x[d] - mean_[d];
    quad += diff * diff * inv_var_[d];
  }
  return log_const_ - 0.5f * quad;
}

float DiagGmm::log_likelihood(std::span<const float> x) const noexcept {
  if (components_.empty()) return -std::numeric_limits<float>::infinity();
  // Small component counts: stack scratch plus the shared log-sum-exp.
  float lls[64];
  const std::size_t m = components_.size();
  assert(m <= 64);
  for (std::size_t i = 0; i < m; ++i) {
    lls[i] = log_weights_[i] + components_[i].log_likelihood(x);
  }
  return util::log_sum_exp(std::span<const float>(lls, m));
}

void DiagGmm::rebuild_batched() {
  la::BatchedGaussians::Builder builder(dim(), components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    builder.add(components_[i].mean(), components_[i].var(), log_weights_[i]);
  }
  batched_ = builder.build();
}

void DiagGmm::component_log_likelihoods(const util::Matrix& frames,
                                        util::Matrix& out,
                                        util::ThreadPool* pool) const {
  batched_.score(frames, out, pool);
}

void DiagGmm::log_likelihoods(const util::Matrix& frames,
                              std::vector<float>& out,
                              util::ThreadPool* pool) const {
  util::Matrix scores;
  batched_.score(frames, scores, pool);
  out.resize(frames.rows());
  for (std::size_t t = 0; t < frames.rows(); ++t) {
    out[t] = util::log_sum_exp(scores.row(t));
  }
}

double DiagGmm::train(const util::Matrix& frames, const GmmTrainConfig& config) {
  const std::size_t n = frames.rows();
  const std::size_t dim = frames.cols();
  if (n == 0 || dim == 0) {
    throw std::invalid_argument("DiagGmm::train: empty data");
  }
  std::size_t m = std::min(config.num_components, n);
  m = std::max<std::size_t>(m, 1);
  if (m > 64) throw std::invalid_argument("DiagGmm: > 64 components unsupported");

  util::Rng rng(config.seed);

  // Global statistics for initial variances and k-means seeding.
  std::vector<float> global_mean(dim, 0.0f), global_var(dim, 0.0f);
  for (std::size_t t = 0; t < n; ++t) {
    auto row = frames.row(t);
    for (std::size_t d = 0; d < dim; ++d) global_mean[d] += row[d];
  }
  for (auto& v : global_mean) v /= static_cast<float>(n);
  for (std::size_t t = 0; t < n; ++t) {
    auto row = frames.row(t);
    for (std::size_t d = 0; d < dim; ++d) {
      const float diff = row[d] - global_mean[d];
      global_var[d] += diff * diff;
    }
  }
  for (auto& v : global_var) {
    v = std::max(v / static_cast<float>(n), DiagGaussian::kVarFloor);
  }

  // --- K-means init: random distinct frames as centroids. ---
  std::vector<std::vector<float>> centroids(m);
  {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    rng.shuffle(order);
    for (std::size_t i = 0; i < m; ++i) {
      auto row = frames.row(order[i]);
      centroids[i].assign(row.begin(), row.end());
    }
  }
  std::vector<std::size_t> assign(n, 0);
  util::Matrix centroid_mat(m, dim);
  util::Matrix proj;  // n x m frame-centroid inner products
  std::vector<float> half_norm(m);
  for (std::size_t iter = 0; iter < config.kmeans_iters; ++iter) {
    // Assign: argmin_i ||x - c_i||^2 = argmin_i (||c_i||^2/2 - x.c_i), with
    // all inner products computed as one GEMM.
    for (std::size_t i = 0; i < m; ++i) {
      float* __restrict__ dst = centroid_mat.row(i).data();
      float nrm = 0.0f;
      for (std::size_t d = 0; d < dim; ++d) {
        dst[d] = centroids[i][d];
        nrm += centroids[i][d] * centroids[i][d];
      }
      half_norm[i] = 0.5f * nrm;
    }
    la::gemm_nt(frames, centroid_mat, proj);
    for (std::size_t t = 0; t < n; ++t) {
      const float* __restrict__ p = proj.row(t).data();
      float best = std::numeric_limits<float>::infinity();
      std::size_t best_i = 0;
      for (std::size_t i = 0; i < m; ++i) {
        const float dist = half_norm[i] - p[i];
        if (dist < best) {
          best = dist;
          best_i = i;
        }
      }
      assign[t] = best_i;
    }
    // Update.
    std::vector<std::size_t> counts(m, 0);
    for (auto& c : centroids) std::fill(c.begin(), c.end(), 0.0f);
    for (std::size_t t = 0; t < n; ++t) {
      auto row = frames.row(t);
      ++counts[assign[t]];
      for (std::size_t d = 0; d < dim; ++d) centroids[assign[t]][d] += row[d];
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (counts[i] == 0) {
        // Re-seed empty cluster at a random frame.
        auto row = frames.row(rng.uniform_index(n));
        centroids[i].assign(row.begin(), row.end());
      } else {
        for (auto& v : centroids[i]) v /= static_cast<float>(counts[i]);
      }
    }
  }

  // Initialise mixture from k-means clusters.
  components_.clear();
  log_weights_.clear();
  {
    std::vector<std::size_t> counts(m, 0);
    std::vector<std::vector<float>> vars(m, std::vector<float>(dim, 0.0f));
    for (std::size_t t = 0; t < n; ++t) {
      auto row = frames.row(t);
      const std::size_t i = assign[t];
      ++counts[i];
      for (std::size_t d = 0; d < dim; ++d) {
        const float diff = row[d] - centroids[i][d];
        vars[i][d] += diff * diff;
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<float> var(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        var[d] = counts[i] > 1
                     ? std::max(vars[i][d] / static_cast<float>(counts[i]),
                                DiagGaussian::kVarFloor)
                     : global_var[d];
      }
      components_.emplace_back(centroids[i], std::move(var));
      const double w = std::max<double>(counts[i], 1) / static_cast<double>(n);
      log_weights_.push_back(static_cast<float>(std::log(w)));
    }
    // Renormalise weights.
    const float lse = util::log_sum_exp(
        std::span<const float>(log_weights_.data(), log_weights_.size()));
    for (auto& w : log_weights_) w -= lse;
  }

  rebuild_batched();

  // --- EM refinement, fully batched: the E-step scores every frame against
  // every component as one GEMM, and the M-step sufficient statistics are
  // Gamma^T X / Gamma^T X^2 products.  Reduction orders are fixed, so the
  // result is independent of thread count.
  double avg_ll = -std::numeric_limits<double>::infinity();
  util::Matrix gamma;  // n x m: scores, then responsibilities in place
  util::Matrix sq(n, dim);
  for (std::size_t t = 0; t < n; ++t) {
    const float* __restrict__ x = frames.row(t).data();
    float* __restrict__ s = sq.row(t).data();
    for (std::size_t d = 0; d < dim; ++d) s[d] = x[d] * x[d];
  }
  util::Matrix stat_mean;  // m x dim: sum_t gamma(t,i) x_t
  util::Matrix stat_sq;    // m x dim: sum_t gamma(t,i) x_t^2
  for (std::size_t iter = 0; iter < config.em_iters; ++iter) {
    batched_.score(frames, gamma);
    double total_ll = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      auto row = gamma.row(t);
      const float lse = util::log_sum_exp(row);
      total_ll += lse;
      for (auto& g : row) g = std::exp(g - lse);
    }
    avg_ll = total_ll / static_cast<double>(n);

    std::vector<double> acc_w(m, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const float* __restrict__ g = gamma.row(t).data();
      for (std::size_t i = 0; i < m; ++i) acc_w[i] += g[i];
    }
    la::gemm_tn(gamma, frames, stat_mean);
    la::gemm_tn(gamma, sq, stat_sq);

    for (std::size_t i = 0; i < m; ++i) {
      const double w = acc_w[i] / static_cast<double>(n);
      if (w < config.min_component_weight) {
        // Starved component: leave parameters, floor weight (renormalised
        // below); avoids collapse on tiny training sets.
        log_weights_[i] = std::log(config.min_component_weight);
        continue;
      }
      std::vector<float> mean(dim), var(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        const double mu = stat_mean(i, d) / acc_w[i];
        const double sqm = stat_sq(i, d) / acc_w[i] - mu * mu;
        mean[d] = static_cast<float>(mu);
        var[d] = static_cast<float>(std::max(sqm, static_cast<double>(DiagGaussian::kVarFloor)));
      }
      components_[i].set(std::move(mean), std::move(var));
      log_weights_[i] = static_cast<float>(std::log(w));
    }
    const float lse = util::log_sum_exp(
        std::span<const float>(log_weights_.data(), log_weights_.size()));
    for (auto& w : log_weights_) w -= lse;
    rebuild_batched();
  }
  return avg_ll;
}

double DiagGmm::average_log_likelihood(const util::Matrix& frames) const {
  if (frames.rows() == 0) return 0.0;
  std::vector<float> lls;
  log_likelihoods(frames, lls);
  double total = 0.0;
  for (const float ll : lls) total += ll;
  return total / static_cast<double>(frames.rows());
}

void DiagGmm::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic("PGMM", 1);
  w.write_u64(components_.size());
  w.write_f32_vec(log_weights_);
  for (const auto& c : components_) {
    w.write_f32_vec(c.mean());
    w.write_f32_vec(c.var());
  }
}

DiagGmm DiagGmm::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic("PGMM", 1);
  const std::uint64_t m = r.read_u64();
  DiagGmm gmm;
  gmm.log_weights_ = r.read_f32_vec();
  if (gmm.log_weights_.size() != m) {
    throw util::SerializeError("GMM weight count mismatch");
  }
  gmm.components_.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    auto mean = r.read_f32_vec();
    auto var = r.read_f32_vec();
    gmm.components_.emplace_back(std::move(mean), std::move(var));
  }
  gmm.rebuild_batched();
  return gmm;
}

}  // namespace phonolid::am
