// GMM-HMM acoustic models and their trainer.
//
// Supervision comes from the synthetic corpus' ground-truth phone alignment
// (the stand-in for the paper's transcribed Switchboard / Mandarin CTS
// corpora): phone sample ranges are mapped to front-end phones, frames are
// uniformly split across HMM states, then optionally refined by forced
// Viterbi realignment under the current model — the classic flat-start
// training loop.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "am/gmm.h"
#include "am/hmm.h"
#include "am/phone_map.h"
#include "corpus/dataset.h"
#include "dsp/features.h"

namespace phonolid::am {

/// Feature matrix plus front-end phone segmentation for one utterance.
struct AlignedUtterance {
  util::Matrix features;                 // frames x dim
  std::vector<std::size_t> phone_seq;    // front-end phone per segment
  std::vector<std::size_t> seg_begin;    // first frame of each segment
  std::vector<std::size_t> seg_end;      // one-past-last frame
};

/// Maps a corpus utterance's sample-level universal-phone alignment to
/// frame-level front-end phone segments under `pipeline`'s framing.
AlignedUtterance align_utterance(const corpus::Utterance& utt,
                                 const dsp::FeaturePipeline& pipeline,
                                 const PhoneSetMap& phone_map);

class GmmHmmModel final : public AcousticModel {
 public:
  GmmHmmModel() = default;
  GmmHmmModel(HmmTopology topology, std::vector<DiagGmm> state_gmms,
              HmmTransitions transitions, std::size_t feature_dim);

  [[nodiscard]] std::size_t num_states() const noexcept override {
    return topology_.num_states();
  }
  [[nodiscard]] std::size_t feature_dim() const noexcept override {
    return feature_dim_;
  }
  void score(const util::Matrix& features, util::Matrix& out) const override;
  [[nodiscard]] double score_flops_per_frame() const noexcept override;

  [[nodiscard]] const HmmTopology& topology() const noexcept { return topology_; }
  [[nodiscard]] const HmmTransitions& transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] const DiagGmm& state_gmm(std::size_t s) const {
    return state_gmms_.at(s);
  }

  void serialize(std::ostream& out) const;
  static GmmHmmModel deserialize(std::istream& in);

 private:
  void rebuild_scorer();
  HmmTopology topology_;
  std::vector<DiagGmm> state_gmms_;
  HmmTransitions transitions_;
  std::size_t feature_dim_ = 0;
  // Every component of every state packed into one GEMM scorer; the
  // per-state mixture reduction uses seg_begin_ offsets.  Built eagerly in
  // the constructor so concurrent const score() calls are safe.
  la::BatchedGaussians all_components_;
  std::vector<std::size_t> seg_begin_;  // num_states + 1 component offsets
};

struct GmmHmmTrainConfig {
  std::size_t states_per_phone = 3;
  GmmTrainConfig gmm;
  /// Forced-realignment EM passes after the flat start (0 = uniform only).
  std::size_t realign_passes = 1;
  std::uint64_t seed = 1;
};

/// Per-frame state labels for one utterance (internal supervision form,
/// exposed for the NN-HMM trainer and for tests).
struct StateLabels {
  std::vector<std::size_t> state;  // global HMM state per frame
};

/// Uniformly split each phone segment across its HMM states.
StateLabels uniform_state_labels(const AlignedUtterance& utt,
                                 const HmmTopology& topology);

/// Forced Viterbi alignment of `utt`'s phone sequence under `model`.
/// Returns per-frame global state labels; falls back to uniform labels if
/// the utterance is shorter than its state sequence.
StateLabels forced_align(const AlignedUtterance& utt, const GmmHmmModel& model);

/// Train a GMM-HMM on aligned utterances (flat start + realignment).
GmmHmmModel train_gmm_hmm(const std::vector<AlignedUtterance>& data,
                          std::size_t num_phones,
                          const GmmHmmTrainConfig& config);

}  // namespace phonolid::am
