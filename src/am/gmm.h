// Diagonal-covariance Gaussian mixture models.
//
// The state emission model of the GMM-HMM front-ends (paper §4.1(c):
// "tied-state left-to-right context-dependent GMM-HMM with 32 Gaussians per
// state", miniaturised here) and the building block for EM training.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "la/batched_gaussian.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace phonolid::am {

/// One diagonal Gaussian with cached normalisation constant.
class DiagGaussian {
 public:
  DiagGaussian() = default;
  DiagGaussian(std::vector<float> mean, std::vector<float> var);

  [[nodiscard]] std::size_t dim() const noexcept { return mean_.size(); }
  [[nodiscard]] const std::vector<float>& mean() const noexcept { return mean_; }
  [[nodiscard]] const std::vector<float>& var() const noexcept { return var_; }

  [[nodiscard]] float log_likelihood(std::span<const float> x) const noexcept;

  void set(std::vector<float> mean, std::vector<float> var);

 private:
  void refresh_constant();
  std::vector<float> mean_;
  std::vector<float> var_;       // floored at kVarFloor
  std::vector<float> inv_var_;   // cached 1/var
  float log_const_ = 0.0f;       // -0.5 * (D log 2pi + sum log var)

 public:
  static constexpr float kVarFloor = 1e-3f;
};

struct GmmTrainConfig {
  std::size_t num_components = 4;
  std::size_t kmeans_iters = 6;
  std::size_t em_iters = 8;
  float min_component_weight = 1e-3f;
  std::uint64_t seed = 1;
};

/// Mixture of diagonal Gaussians.
class DiagGmm {
 public:
  DiagGmm() = default;

  [[nodiscard]] std::size_t num_components() const noexcept {
    return components_.size();
  }
  [[nodiscard]] std::size_t dim() const noexcept {
    return components_.empty() ? 0 : components_[0].dim();
  }
  [[nodiscard]] const DiagGaussian& component(std::size_t i) const {
    return components_.at(i);
  }
  [[nodiscard]] const std::vector<float>& log_weights() const noexcept {
    return log_weights_;
  }

  [[nodiscard]] float log_likelihood(std::span<const float> x) const noexcept;

  /// Batched scoring: out(t, i) = log w_i + log N(frames_t; component i),
  /// evaluated for all frames and components as one GEMM.
  void component_log_likelihoods(const util::Matrix& frames, util::Matrix& out,
                                 util::ThreadPool* pool = nullptr) const;

  /// Batched mixture log-likelihood for every row of `frames`.
  void log_likelihoods(const util::Matrix& frames, std::vector<float>& out,
                       util::ThreadPool* pool = nullptr) const;

  /// Packed GEMM scorer over all components (log-weights folded in).
  [[nodiscard]] const la::BatchedGaussians& batched() const noexcept {
    return batched_;
  }

  /// Trains on `frames` (rows = observations).  K-means init followed by EM.
  /// Returns the final average log-likelihood per frame.
  /// Degenerate inputs (fewer frames than components) shrink the mixture.
  double train(const util::Matrix& frames, const GmmTrainConfig& config);

  /// Average per-frame log-likelihood over a data matrix.
  [[nodiscard]] double average_log_likelihood(const util::Matrix& frames) const;

  void serialize(std::ostream& out) const;
  static DiagGmm deserialize(std::istream& in);

 private:
  void rebuild_batched();
  std::vector<DiagGaussian> components_;
  std::vector<float> log_weights_;
  // Eagerly rebuilt whenever the parameters change (train/deserialize), so
  // concurrent const score() calls need no lazy-init synchronisation.
  la::BatchedGaussians batched_;
};

}  // namespace phonolid::am
