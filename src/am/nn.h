// Feed-forward neural networks for hybrid NN-HMM acoustics.
//
// One hidden layer reproduces the BUT "ANN-HMM" TRAPs-style front-ends;
// two or more reproduce the Tsinghua "DNN-HMM" front-end.  Training follows
// the paper's §4.1(b) schedule: sigmoid hidden units, softmax output over
// tied states, minibatch SGD with momentum, initial learning rate 0.2, and
// the learning rate halved whenever dev-set frame accuracy regresses at an
// epoch boundary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/matrix.h"
#include "util/rng.h"

namespace phonolid::am {

struct NnConfig {
  std::vector<std::size_t> hidden_sizes = {64};
  double learning_rate = 0.2;
  double momentum = 0.9;
  std::size_t batch_size = 128;
  std::size_t max_epochs = 30;
  /// Halve the lr when dev frame accuracy drops (paper's schedule); stop
  /// after `max_lr_halvings` halvings.
  std::size_t max_lr_halvings = 4;
  double l2 = 1e-5;
  std::uint64_t seed = 1;
};

/// Sigmoid-hidden, softmax-output MLP with SGD + momentum training.
class FeedForwardNet {
 public:
  FeedForwardNet() = default;
  /// Random (Glorot-scaled) initialisation.
  FeedForwardNet(std::size_t input_dim, const std::vector<std::size_t>& hidden,
                 std::size_t output_dim, util::Rng& rng);

  [[nodiscard]] std::size_t input_dim() const noexcept;
  [[nodiscard]] std::size_t output_dim() const noexcept;
  [[nodiscard]] std::size_t num_layers() const noexcept { return weights_.size(); }
  [[nodiscard]] std::size_t num_parameters() const noexcept;

  /// Log-posteriors (log-softmax) for a batch: in frames x input_dim,
  /// out frames x output_dim.
  void log_posteriors(const util::Matrix& in, util::Matrix& out) const;

  /// One SGD step on a minibatch; returns the batch's mean cross-entropy.
  double train_batch(const util::Matrix& batch_x,
                     const std::vector<std::uint32_t>& batch_y,
                     double learning_rate, double momentum, double l2);

  /// Frame accuracy on a labelled set.
  [[nodiscard]] double frame_accuracy(const util::Matrix& x,
                                      const std::vector<std::uint32_t>& y) const;

  void serialize(std::ostream& out) const;
  static FeedForwardNet deserialize(std::istream& in);

 private:
  void forward(const util::Matrix& in,
               std::vector<util::Matrix>& activations) const;

  std::vector<util::Matrix> weights_;   // layer l: out_l x in_l
  std::vector<std::vector<float>> biases_;
  std::vector<util::Matrix> vel_w_;     // momentum buffers
  std::vector<std::vector<float>> vel_b_;
};

/// Full training loop with dev-driven lr halving.  Returns the best dev
/// frame accuracy reached.
double train_net(FeedForwardNet& net, const util::Matrix& train_x,
                 const std::vector<std::uint32_t>& train_y,
                 const util::Matrix& dev_x,
                 const std::vector<std::uint32_t>& dev_y,
                 const NnConfig& config);

}  // namespace phonolid::am
