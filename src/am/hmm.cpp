#include "am/hmm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace phonolid::am {

void AcousticModel::score_range(const util::Matrix& features,
                                std::size_t begin, std::size_t end,
                                util::Matrix& out) const {
  assert(begin <= end && end <= features.rows());
  if (begin == 0 && end == features.rows()) {
    score(features, out);
    return;
  }
  util::Matrix slice(end - begin, features.cols());
  for (std::size_t t = begin; t < end; ++t) {
    const auto src = features.row(t);
    std::copy(src.begin(), src.end(), slice.row(t - begin).begin());
  }
  score(slice, out);
}

HmmTransitions HmmTransitions::uniform(std::size_t num_states,
                                       double mean_frames_per_state) {
  HmmTransitions t;
  const double stay =
      std::clamp(1.0 - 1.0 / std::max(mean_frames_per_state, 1.001), 0.05, 0.98);
  t.log_self.assign(num_states, static_cast<float>(std::log(stay)));
  t.log_advance.assign(num_states, static_cast<float>(std::log(1.0 - stay)));
  return t;
}

HmmTransitions HmmTransitions::estimate(
    const std::vector<std::size_t>& self_counts,
    const std::vector<std::size_t>& advance_counts,
    double fallback_mean_frames) {
  const std::size_t n = self_counts.size();
  HmmTransitions t = uniform(n, fallback_mean_frames);
  for (std::size_t s = 0; s < n; ++s) {
    const double total =
        static_cast<double>(self_counts[s] + advance_counts[s]);
    if (total < 4.0) continue;  // too little evidence; keep the prior
    const double stay =
        std::clamp(static_cast<double>(self_counts[s]) / total, 0.05, 0.98);
    t.log_self[s] = static_cast<float>(std::log(stay));
    t.log_advance[s] = static_cast<float>(std::log(1.0 - stay));
  }
  return t;
}

}  // namespace phonolid::am
