// LRE-style dataset construction.
//
// Mirrors the paper's data layout (§4.2) at laptop scale:
//   - a *target* language family (paper: 23 LRE09 languages),
//   - per-front-end *native* training languages with phone-aligned audio
//     (paper: Czech/Hungarian/Russian/English/Mandarin corpora used to train
//     the phone recognizers),
//   - a VSM training set of long utterances per target language
//     (paper: 180k conversations),
//   - a development set for fusion calibration (paper: LRE03/05/07 + VOA),
//   - a test set in three nominal duration tiers (paper: 30s / 10s / 3s).
//
// Test utterances are rendered with a *harder channel distribution* than
// training, reproducing the train/test mismatch that motivates DBA.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/language_model.h"
#include "corpus/phone_inventory.h"
#include "corpus/synthesizer.h"
#include "util/options.h"

namespace phonolid::corpus {

enum class DurationTier : std::uint8_t { k30s = 0, k10s = 1, k3s = 2 };
inline constexpr std::size_t kNumTiers = 3;

const char* to_string(DurationTier tier) noexcept;

struct Utterance {
  std::uint64_t id = 0;
  std::int32_t language = -1;  // index into target languages; -1 = native/unknown
  DurationTier tier = DurationTier::k30s;
  std::vector<float> samples;
  /// Ground-truth universal-phone alignment (kept for AM training sets;
  /// empty for VSM/dev/test sets, which must be label-only like real data).
  std::vector<PhoneAlignment> alignment;
};

using Dataset = std::vector<Utterance>;

struct CorpusConfig {
  std::uint64_t seed = 20090704;
  double sample_rate = 8000.0;
  std::size_t num_universal_phones = 40;

  // Target language family.
  LanguageFamilyConfig family;

  // Native (front-end training) languages.
  std::size_t num_native_languages = 6;
  std::size_t am_train_utts_per_native = 64;
  double am_train_seconds = 3.0;

  // VSM training / dev / test sizes (per target language).
  std::size_t train_utts_per_language = 60;
  std::size_t dev_utts_per_language_per_tier = 6;
  std::size_t test_utts_per_language_per_tier = 40;

  /// Actual rendered seconds for each nominal tier (30s/10s/3s); scaled
  /// down so the full experiment grid fits in laptop minutes.
  double tier_seconds[kNumTiers] = {3.0, 1.2, 0.5};
  double train_seconds = 3.0;

  /// Preset scales used by the benches (PHONOLID_SCALE).
  static CorpusConfig preset(util::Scale scale, std::uint64_t seed);
};

/// Owns the inventory, the language specs and all generated datasets.
class LreCorpus {
 public:
  /// Generates everything deterministically from config.seed (parallel over
  /// utterances; results independent of thread count).
  static LreCorpus build(const CorpusConfig& config);

  [[nodiscard]] const CorpusConfig& config() const noexcept { return config_; }
  [[nodiscard]] const PhoneInventory& inventory() const noexcept {
    return inventory_;
  }
  [[nodiscard]] const std::vector<LanguageSpec>& target_languages() const noexcept {
    return targets_;
  }
  [[nodiscard]] const std::vector<LanguageSpec>& native_languages() const noexcept {
    return natives_;
  }
  [[nodiscard]] std::size_t num_target_languages() const noexcept {
    return targets_.size();
  }

  /// Phone-aligned audio in native language `n` for acoustic-model training.
  [[nodiscard]] const Dataset& am_train(std::size_t native_index) const {
    return am_train_.at(native_index);
  }
  [[nodiscard]] const Dataset& vsm_train() const noexcept { return vsm_train_; }
  [[nodiscard]] const Dataset& dev() const noexcept { return dev_; }
  [[nodiscard]] const Dataset& test() const noexcept { return test_; }

  /// Test utterances restricted to one duration tier (indices into test()).
  [[nodiscard]] std::vector<std::size_t> test_indices(DurationTier tier) const;
  [[nodiscard]] std::vector<std::size_t> dev_indices(DurationTier tier) const;

 private:
  CorpusConfig config_;
  PhoneInventory inventory_;
  std::vector<LanguageSpec> targets_;
  std::vector<LanguageSpec> natives_;
  std::vector<Dataset> am_train_;
  Dataset vsm_train_;
  Dataset dev_;
  Dataset test_;
};

}  // namespace phonolid::corpus
