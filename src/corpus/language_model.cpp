#include "corpus/language_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace phonolid::corpus {

namespace {

void normalize(std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  if (sum <= 0.0) {
    std::fill(v.begin(), v.end(), 1.0 / static_cast<double>(v.size()));
    return;
  }
  for (auto& x : v) x /= sum;
}

/// Gamma(shape, 1) sampler (Marsaglia-Tsang for shape >= 1, boost for < 1);
/// used to draw Dirichlet rows.
double sample_gamma(double shape, util::Rng& rng) {
  if (shape < 1.0) {
    const double u = std::max(rng.uniform(), 1e-12);
    return sample_gamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = std::max(rng.uniform(), 1e-12);
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> sample_dirichlet_row(std::size_t n, double concentration,
                                         const std::vector<bool>& active,
                                         util::Rng& rng) {
  std::vector<double> row(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) row[i] = sample_gamma(concentration, rng) + 1e-9;
  }
  normalize(row);
  return row;
}

}  // namespace

LanguageSpec::LanguageSpec(std::string name, std::vector<double> initial,
                           std::vector<std::vector<double>> bigram)
    : name_(std::move(name)),
      initial_(std::move(initial)),
      bigram_(std::move(bigram)) {
  if (bigram_.size() != initial_.size()) {
    throw std::invalid_argument("bigram row count != phone count");
  }
  for (const auto& row : bigram_) {
    if (row.size() != initial_.size()) {
      throw std::invalid_argument("bigram row has wrong width");
    }
  }
}

std::vector<std::size_t> LanguageSpec::sample_sequence(
    const PhoneInventory& inventory, double target_seconds,
    util::Rng& rng) const {
  assert(inventory.size() == num_phones());
  std::vector<std::size_t> seq;
  seq.reserve(static_cast<std::size_t>(target_seconds / 0.05) + 4);
  double elapsed = 0.0;
  std::size_t current = rng.categorical(initial_);
  while (elapsed < target_seconds) {
    seq.push_back(current);
    elapsed += std::max(0.02, inventory.phone(current).duration_mean_s);
    current = rng.categorical(bigram_[current]);
  }
  return seq;
}

double LanguageSpec::bigram_distance(const LanguageSpec& a,
                                     const LanguageSpec& b) {
  if (a.num_phones() != b.num_phones()) {
    throw std::invalid_argument("bigram_distance: size mismatch");
  }
  double dist = 0.0;
  for (std::size_t p = 0; p < a.num_phones(); ++p) {
    double row = 0.0;
    for (std::size_t q = 0; q < a.num_phones(); ++q) {
      row += std::abs(a.bigram_[p][q] - b.bigram_[p][q]);
    }
    dist += 0.5 * row;  // total variation per row
  }
  return dist / static_cast<double>(a.num_phones());
}

LanguageSpec build_language(const PhoneInventory& inventory, std::string name,
                            double concentration, double subset_fraction,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t n = inventory.size();

  // Choose the phone subset this language uses.
  const auto subset_size = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::lround(subset_fraction * static_cast<double>(n))));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<bool> active(n, false);
  for (std::size_t i = 0; i < subset_size; ++i) active[order[i]] = true;

  std::vector<double> initial = sample_dirichlet_row(n, concentration, active, rng);
  std::vector<std::vector<double>> bigram(n);
  for (std::size_t p = 0; p < n; ++p) {
    if (active[p]) {
      bigram[p] = sample_dirichlet_row(n, concentration, active, rng);
    } else {
      // Inactive phones never occur, but keep valid fallback rows so the
      // chain is total (robust to label noise in tests).
      bigram[p] = initial;
    }
  }
  return LanguageSpec(std::move(name), std::move(initial), std::move(bigram));
}

std::vector<LanguageSpec> build_language_family(const PhoneInventory& inventory,
                                                const LanguageFamilyConfig& config,
                                                std::uint64_t seed) {
  std::vector<LanguageSpec> langs;
  langs.reserve(config.num_languages);
  for (std::size_t k = 0; k < config.num_languages; ++k) {
    std::string name = "lang" + std::to_string(k);
    const std::uint64_t lang_seed = util::derive_stream(seed, 0xA000 + k);
    const bool sibling = config.sibling_stride > 0 && k > 0 &&
                         (k % config.sibling_stride) == (config.sibling_stride - 1);
    LanguageSpec fresh = build_language(inventory, name, config.concentration,
                                        config.subset_fraction, lang_seed);
    if (!sibling) {
      langs.push_back(std::move(fresh));
      continue;
    }
    // Sibling: interpolate towards the previous language's chain.
    const LanguageSpec& parent = langs.back();
    const double w = config.sibling_similarity;
    std::vector<double> initial(inventory.size());
    for (std::size_t i = 0; i < initial.size(); ++i) {
      initial[i] = w * parent.initial()[i] + (1.0 - w) * fresh.initial()[i];
    }
    std::vector<std::vector<double>> bigram(inventory.size());
    for (std::size_t p = 0; p < bigram.size(); ++p) {
      bigram[p].resize(inventory.size());
      for (std::size_t q = 0; q < bigram[p].size(); ++q) {
        bigram[p][q] =
            w * parent.bigram()[p][q] + (1.0 - w) * fresh.bigram()[p][q];
      }
    }
    langs.emplace_back(name + "_sib", std::move(initial), std::move(bigram));
  }
  return langs;
}

}  // namespace phonolid::corpus
