// Waveform synthesis: phone sequence -> speech-like audio.
//
// Formant synthesis in miniature: each phone excites 2-3 damped resonances
// (voiced phones with a harmonic pulse component, obstruents with noise),
// modulated by speaker vocal-tract scaling and pitch, then coloured by a
// channel (spectral tilt + additive noise + gain).  This reproduces the
// train/test variability the paper names — "speakers, background noise,
// channel conditions" — which is precisely the robustness gap DBA's
// transductive adoption of test data is designed to close.
#pragma once

#include <cstdint>
#include <vector>

#include "corpus/language_model.h"
#include "corpus/phone_inventory.h"
#include "util/rng.h"

namespace phonolid::corpus {

struct SpeakerProfile {
  double vtl_factor = 1.0;     // formant scaling (vocal tract length)
  double pitch_hz = 120.0;     // fundamental for voiced excitation
  double rate_factor = 1.0;    // speaking-rate multiplier on durations
  double breathiness = 0.05;   // extra aspiration noise

  static SpeakerProfile sample(util::Rng& rng);
};

struct ChannelProfile {
  double tilt = 0.0;           // one-pole spectral tilt in [-0.6, 0.6]
  double snr_db = 25.0;        // additive white noise level
  double gain = 1.0;

  static ChannelProfile sample(util::Rng& rng);
  /// Harder channel distribution used for the *test* side, so test
  /// conditions genuinely differ from training (paper §1).
  static ChannelProfile sample_test(util::Rng& rng);
};

/// Ground-truth phone timing for acoustic-model supervision.
struct PhoneAlignment {
  std::size_t phone = 0;        // universal phone id
  std::size_t start_sample = 0;
  std::size_t end_sample = 0;   // exclusive
};

struct RenderedUtterance {
  std::vector<float> samples;
  std::vector<PhoneAlignment> alignment;
};

class Synthesizer {
 public:
  explicit Synthesizer(const PhoneInventory& inventory,
                       double sample_rate = 8000.0);

  [[nodiscard]] double sample_rate() const noexcept { return sample_rate_; }

  /// Render a phone sequence to audio with per-phone alignment.
  [[nodiscard]] RenderedUtterance render(const std::vector<std::size_t>& phones,
                                         const SpeakerProfile& speaker,
                                         const ChannelProfile& channel,
                                         util::Rng& rng) const;

 private:
  const PhoneInventory* inventory_;
  double sample_rate_;
};

}  // namespace phonolid::corpus
