#include "corpus/phone_inventory.h"

#include <cmath>
#include <cstdio>

namespace phonolid::corpus {

PhoneInventory build_universal_inventory(std::size_t num_phones,
                                         std::uint64_t seed) {
  util::Rng rng(util::derive_stream(seed, 0x9051ull));
  std::vector<PhoneDef> phones;
  phones.reserve(num_phones);

  // Lay phones on a roughly square grid in perceptual (F1, F2) space.
  const auto grid =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(num_phones))));
  const double f1_lo = 250.0, f1_hi = 900.0;   // vowel-like F1 range
  const double f2_lo = 800.0, f2_hi = 2600.0;  // F2 range

  for (std::size_t i = 0; i < num_phones; ++i) {
    const std::size_t gx = i % grid;
    const std::size_t gy = i / grid;
    PhoneDef p;
    char label[24];
    std::snprintf(label, sizeof label, "p%02zu", i);
    p.label = label;

    const double fx = (grid > 1) ? static_cast<double>(gx) / static_cast<double>(grid - 1) : 0.5;
    const double fy = (grid > 1) ? static_cast<double>(gy) / static_cast<double>(grid - 1) : 0.5;
    // Jitter keeps the grid from being perfectly regular; +-12% of a cell.
    const double jx = rng.uniform(-0.12, 0.12) / static_cast<double>(grid);
    const double jy = rng.uniform(-0.12, 0.12) / static_cast<double>(grid);

    p.formant_hz[0] = f1_lo + (f1_hi - f1_lo) * std::min(1.0, std::max(0.0, fx + jx));
    p.formant_hz[1] = f2_lo + (f2_hi - f2_lo) * std::min(1.0, std::max(0.0, fy + jy));
    // Keep the vowel-space ordering F2 > F1 (true of natural speech and
    // assumed by the formant-space clustering in am::build_phone_map).
    p.formant_hz[1] = std::max(p.formant_hz[1], p.formant_hz[0] + 150.0);
    p.formant_hz[2] = 2800.0 + rng.uniform(0.0, 700.0);

    p.formant_bw[0] = rng.uniform(60.0, 120.0);
    p.formant_bw[1] = rng.uniform(80.0, 160.0);
    p.formant_bw[2] = rng.uniform(120.0, 240.0);

    p.formant_amp[0] = 1.0;
    p.formant_amp[1] = rng.uniform(0.4, 0.8);
    p.formant_amp[2] = rng.uniform(0.1, 0.3);

    // Roughly a third of the inventory behaves like obstruents: noisier,
    // shorter, sometimes unvoiced.
    const bool obstruent = rng.uniform() < 0.35;
    p.voiced = !obstruent || rng.bernoulli(0.4);
    p.noise_fraction = obstruent ? rng.uniform(0.45, 0.85) : rng.uniform(0.02, 0.15);
    p.duration_mean_s = obstruent ? rng.uniform(0.04, 0.08) : rng.uniform(0.06, 0.14);
    p.duration_std_s = p.duration_mean_s * 0.25;

    phones.push_back(std::move(p));
  }
  return PhoneInventory(std::move(phones));
}

}  // namespace phonolid::corpus
