#include "corpus/dataset.h"

#include <atomic>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace phonolid::corpus {

const char* to_string(DurationTier tier) noexcept {
  switch (tier) {
    case DurationTier::k30s: return "30s";
    case DurationTier::k10s: return "10s";
    case DurationTier::k3s: return "3s";
  }
  return "?";
}

CorpusConfig CorpusConfig::preset(util::Scale scale, std::uint64_t seed) {
  CorpusConfig c;
  c.seed = seed;
  switch (scale) {
    case util::Scale::kQuick:
      c.num_universal_phones = 30;
      c.family.num_languages = 6;
      c.num_native_languages = 6;
      c.am_train_utts_per_native = 32;
      c.am_train_seconds = 2.5;
      c.train_utts_per_language = 24;
      c.dev_utts_per_language_per_tier = 4;
      c.test_utts_per_language_per_tier = 10;
      c.tier_seconds[0] = 1.6;
      c.tier_seconds[1] = 0.7;
      c.tier_seconds[2] = 0.35;
      c.train_seconds = 1.6;
      break;
    case util::Scale::kDefault:
      // Defaults in the struct definition.
      break;
    case util::Scale::kFull:
      c.num_universal_phones = 48;
      c.family.num_languages = 14;
      c.num_native_languages = 6;
      c.am_train_utts_per_native = 80;
      c.am_train_seconds = 4.0;
      c.train_utts_per_language = 120;
      c.dev_utts_per_language_per_tier = 10;
      c.test_utts_per_language_per_tier = 50;
      c.tier_seconds[0] = 4.5;
      c.tier_seconds[1] = 1.5;
      c.tier_seconds[2] = 0.5;
      c.train_seconds = 4.5;
      break;
  }
  return c;
}

namespace {

/// Renders `count` utterances in parallel into `out` (resized first), with
/// RNG streams derived from (seed, salt, index) so the result is identical
/// under any thread count.
struct RenderJob {
  std::int32_t language = -1;
  DurationTier tier = DurationTier::k30s;
  const LanguageSpec* spec = nullptr;
  double seconds = 1.0;
  bool keep_alignment = false;
  bool test_channel = false;
};

void render_jobs(const PhoneInventory& inventory, const Synthesizer& synth,
                 std::uint64_t seed, std::uint64_t salt,
                 const std::vector<RenderJob>& jobs, Dataset& out) {
  out.resize(jobs.size());
  util::parallel_for(0, jobs.size(), [&](std::size_t i) {
    util::Rng rng(util::derive_stream(seed, salt * 0x10001ull + i));
    const RenderJob& job = jobs[i];
    const auto phones = job.spec->sample_sequence(inventory, job.seconds, rng);
    const SpeakerProfile speaker = SpeakerProfile::sample(rng);
    const ChannelProfile channel = job.test_channel
                                       ? ChannelProfile::sample_test(rng)
                                       : ChannelProfile::sample(rng);
    RenderedUtterance rendered = synth.render(phones, speaker, channel, rng);
    Utterance& utt = out[i];
    utt.id = salt * 1000000ull + i;
    utt.language = job.language;
    utt.tier = job.tier;
    utt.samples = std::move(rendered.samples);
    if (job.keep_alignment) utt.alignment = std::move(rendered.alignment);
  });
}

}  // namespace

LreCorpus LreCorpus::build(const CorpusConfig& config) {
  LreCorpus corpus;
  corpus.config_ = config;
  corpus.inventory_ =
      build_universal_inventory(config.num_universal_phones, config.seed);
  corpus.targets_ =
      build_language_family(corpus.inventory_, config.family, config.seed);
  corpus.natives_.reserve(config.num_native_languages);
  for (std::size_t n = 0; n < config.num_native_languages; ++n) {
    corpus.natives_.push_back(build_language(
        corpus.inventory_, "native" + std::to_string(n),
        config.family.concentration, config.family.subset_fraction,
        util::derive_stream(config.seed, 0xB000 + n)));
  }

  const Synthesizer synth(corpus.inventory_, config.sample_rate);
  const std::size_t k = corpus.targets_.size();

  // Acoustic-model training sets: phone-aligned, one per native language.
  corpus.am_train_.resize(config.num_native_languages);
  for (std::size_t n = 0; n < config.num_native_languages; ++n) {
    std::vector<RenderJob> jobs(config.am_train_utts_per_native);
    for (auto& job : jobs) {
      job.language = -1;
      job.spec = &corpus.natives_[n];
      job.seconds = config.am_train_seconds;
      job.keep_alignment = true;
    }
    render_jobs(corpus.inventory_, synth, config.seed, 10 + n, jobs,
                corpus.am_train_[n]);
  }

  // VSM training set: long utterances, per target language.
  {
    std::vector<RenderJob> jobs;
    jobs.reserve(k * config.train_utts_per_language);
    for (std::size_t lang = 0; lang < k; ++lang) {
      for (std::size_t u = 0; u < config.train_utts_per_language; ++u) {
        RenderJob job;
        job.language = static_cast<std::int32_t>(lang);
        job.spec = &corpus.targets_[lang];
        job.seconds = config.train_seconds;
        jobs.push_back(job);
      }
    }
    render_jobs(corpus.inventory_, synth, config.seed, 100, jobs,
                corpus.vsm_train_);
  }

  // Dev and test: all tiers, test channel conditions for the test set.
  const auto build_tiered = [&](std::size_t per_lang_per_tier, bool test_channel,
                                std::uint64_t salt, Dataset& out) {
    std::vector<RenderJob> jobs;
    jobs.reserve(k * per_lang_per_tier * kNumTiers);
    for (std::size_t tier = 0; tier < kNumTiers; ++tier) {
      for (std::size_t lang = 0; lang < k; ++lang) {
        for (std::size_t u = 0; u < per_lang_per_tier; ++u) {
          RenderJob job;
          job.language = static_cast<std::int32_t>(lang);
          job.tier = static_cast<DurationTier>(tier);
          job.spec = &corpus.targets_[lang];
          job.seconds = config.tier_seconds[tier];
          job.test_channel = test_channel;
          jobs.push_back(job);
        }
      }
    }
    render_jobs(corpus.inventory_, synth, config.seed, salt, jobs, out);
  };
  build_tiered(config.dev_utts_per_language_per_tier, false, 200, corpus.dev_);
  build_tiered(config.test_utts_per_language_per_tier, true, 300, corpus.test_);

  PHONOLID_INFO("corpus") << "built corpus: " << k << " target languages, "
                          << corpus.vsm_train_.size() << " train / "
                          << corpus.dev_.size() << " dev / "
                          << corpus.test_.size() << " test utterances";
  return corpus;
}

namespace {
std::vector<std::size_t> tier_indices(const Dataset& set, DurationTier tier) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i].tier == tier) idx.push_back(i);
  }
  return idx;
}
}  // namespace

std::vector<std::size_t> LreCorpus::test_indices(DurationTier tier) const {
  return tier_indices(test_, tier);
}

std::vector<std::size_t> LreCorpus::dev_indices(DurationTier tier) const {
  return tier_indices(dev_, tier);
}

}  // namespace phonolid::corpus
