// Universal phone inventory for the synthetic corpus.
//
// The paper's closed corpora (NIST LRE 2009 audio, Switchboard, CallFriend,
// VOA...) are unavailable, so phonolid synthesises speech-like audio from an
// inventory of abstract phones.  Each phone is an acoustic prototype: a set
// of formant resonances (frequency + bandwidth + amplitude), a voicing flag,
// a fricative-noise fraction and a duration distribution.  Languages differ
// *phonotactically* (which phones follow which), which is exactly the signal
// PPRVSM exploits; the acoustic layer exists so the phone recognizers are
// realistically error-prone and channel/speaker sensitive.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace phonolid::corpus {

inline constexpr std::size_t kMaxFormants = 3;

struct PhoneDef {
  std::string label;                     // e.g. "p07"
  double formant_hz[kMaxFormants] = {};  // resonance centre frequencies
  double formant_bw[kMaxFormants] = {};  // bandwidths (Hz)
  double formant_amp[kMaxFormants] = {}; // relative amplitudes
  bool voiced = true;                    // harmonic vs noise excitation mix
  double noise_fraction = 0.1;           // aperiodic energy share
  double duration_mean_s = 0.08;         // mean phone length, seconds
  double duration_std_s = 0.02;
};

/// The shared phone set all languages draw from.
class PhoneInventory {
 public:
  PhoneInventory() = default;
  explicit PhoneInventory(std::vector<PhoneDef> phones)
      : phones_(std::move(phones)) {}

  [[nodiscard]] std::size_t size() const noexcept { return phones_.size(); }
  [[nodiscard]] const PhoneDef& phone(std::size_t i) const { return phones_.at(i); }
  [[nodiscard]] const std::vector<PhoneDef>& phones() const noexcept {
    return phones_;
  }

 private:
  std::vector<PhoneDef> phones_;
};

/// Deterministically builds `num_phones` acoustically spread prototypes.
/// Phones are placed on a jittered grid in (F1, F2) space so that most pairs
/// are separable but near neighbours confuse — the error source the DBA
/// voting criterion has to survive.
PhoneInventory build_universal_inventory(std::size_t num_phones,
                                         std::uint64_t seed);

}  // namespace phonolid::corpus
