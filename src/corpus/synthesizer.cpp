#include "corpus/synthesizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace phonolid::corpus {

SpeakerProfile SpeakerProfile::sample(util::Rng& rng) {
  SpeakerProfile s;
  s.vtl_factor = rng.uniform(0.88, 1.14);
  s.pitch_hz = rng.uniform(85.0, 220.0);
  s.rate_factor = rng.uniform(0.85, 1.2);
  s.breathiness = rng.uniform(0.02, 0.1);
  return s;
}

ChannelProfile ChannelProfile::sample(util::Rng& rng) {
  ChannelProfile c;
  c.tilt = rng.uniform(-0.3, 0.3);
  c.snr_db = rng.uniform(18.0, 32.0);
  c.gain = rng.uniform(0.6, 1.4);
  return c;
}

ChannelProfile ChannelProfile::sample_test(util::Rng& rng) {
  ChannelProfile c;
  // Wider tilt range and lower SNR floor: the test side is noisier and more
  // varied than training, as in real evaluation data.
  c.tilt = rng.uniform(-0.6, 0.6);
  c.snr_db = rng.uniform(8.0, 26.0);
  c.gain = rng.uniform(0.35, 1.8);
  return c;
}

Synthesizer::Synthesizer(const PhoneInventory& inventory, double sample_rate)
    : inventory_(&inventory), sample_rate_(sample_rate) {}

RenderedUtterance Synthesizer::render(const std::vector<std::size_t>& phones,
                                      const SpeakerProfile& speaker,
                                      const ChannelProfile& channel,
                                      util::Rng& rng) const {
  RenderedUtterance out;
  out.alignment.reserve(phones.size());

  // First pass: durations -> total length.
  std::vector<std::size_t> lengths(phones.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < phones.size(); ++i) {
    const PhoneDef& def = inventory_->phone(phones[i]);
    double dur = rng.gaussian(def.duration_mean_s, def.duration_std_s) /
                 speaker.rate_factor;
    dur = std::clamp(dur, 0.03, 0.4);
    lengths[i] = static_cast<std::size_t>(dur * sample_rate_);
    total += lengths[i];
  }
  out.samples.assign(total, 0.0f);

  const double dt = 1.0 / sample_rate_;
  const double nyquist = sample_rate_ / 2.0;
  std::size_t cursor = 0;
  double pitch_phase = 0.0;
  for (std::size_t i = 0; i < phones.size(); ++i) {
    const PhoneDef& def = inventory_->phone(phones[i]);
    const std::size_t len = lengths[i];
    out.alignment.push_back({phones[i], cursor, cursor + len});

    // Formant oscillator phases start fresh each phone; slight random
    // detuning models coarticulation variability.
    double phase[kMaxFormants] = {rng.uniform(0.0, 2.0 * std::numbers::pi),
                                  rng.uniform(0.0, 2.0 * std::numbers::pi),
                                  rng.uniform(0.0, 2.0 * std::numbers::pi)};
    double freq[kMaxFormants];
    for (std::size_t f = 0; f < kMaxFormants; ++f) {
      const double detune = 1.0 + rng.uniform(-0.03, 0.03);
      freq[f] = std::min(def.formant_hz[f] * speaker.vtl_factor * detune,
                         nyquist * 0.95);
    }

    for (std::size_t t = 0; t < len; ++t) {
      // Raised-cosine amplitude envelope avoids clicks at phone joins.
      const double pos = static_cast<double>(t) / static_cast<double>(std::max<std::size_t>(len, 1));
      const double env = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * std::min(pos, 1.0)));

      double harmonic = 0.0;
      for (std::size_t f = 0; f < kMaxFormants; ++f) {
        harmonic += def.formant_amp[f] * std::sin(phase[f]);
        phase[f] += 2.0 * std::numbers::pi * freq[f] * dt;
      }
      // Voiced excitation: amplitude-modulate formants by the glottal cycle.
      if (def.voiced) {
        const double glottal = 0.6 + 0.4 * std::sin(pitch_phase);
        harmonic *= glottal;
        pitch_phase += 2.0 * std::numbers::pi * speaker.pitch_hz * dt;
      }
      const double noise = rng.gaussian();
      const double mix = (1.0 - def.noise_fraction) * harmonic +
                         (def.noise_fraction + speaker.breathiness) * noise * 0.7;
      out.samples[cursor + t] = static_cast<float>(env * mix * 0.3);
    }
    cursor += len;
  }

  // Channel: one-pole tilt filter y[t] = x[t] + tilt * y[t-1], then additive
  // noise at the requested SNR, then gain.
  double prev = 0.0;
  double signal_power = 0.0;
  for (auto& s : out.samples) {
    const double y = s + channel.tilt * prev;
    prev = y;
    s = static_cast<float>(y);
    signal_power += y * y;
  }
  if (!out.samples.empty()) {
    signal_power /= static_cast<double>(out.samples.size());
    const double noise_power =
        signal_power / std::pow(10.0, channel.snr_db / 10.0);
    const double noise_std = std::sqrt(std::max(noise_power, 0.0));
    for (auto& s : out.samples) {
      s = static_cast<float>(
          (s + noise_std * rng.gaussian()) * channel.gain);
    }
  }
  return out;
}

}  // namespace phonolid::corpus
