// LDA-MMI score fusion across subsystems (paper §3(g), Eq. 14-15).
//
// Each subsystem q contributes a K-dimensional score vector f_q(φ(x));
// fusion stacks them as x = [w_1 f_1, ..., w_Q f_Q], applies LDA, and
// models the result with the MMI-refined Gaussian backend.  The subsystem
// weights w_n default to uniform; for DBA runs they follow Eq. 15,
// w_n = M_n / Σ_m M_m with M_n the number of test utterances passing the
// vote criterion in subsystem n.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "backend/gaussian_backend.h"
#include "backend/lda.h"
#include "util/matrix.h"

namespace phonolid::backend {

struct FusionConfig {
  MmiConfig mmi;
  /// Cap on the LDA output dimensionality (0 = num_classes - 1).
  std::size_t lda_components = 0;
  /// Skip the LDA rotation (ablation).
  bool use_lda = true;
};

class ScoreFusion {
 public:
  ScoreFusion() = default;

  /// `subsystem_scores[q]`: utterances x K score matrix from subsystem q —
  /// all with identical row counts and K columns.  `weights` empty = uniform
  /// (normalised internally per Eq. 15's constraint Σ w = 1).
  /// Fits LDA + Gaussian-MMI on the dev labels and returns the final MMI
  /// objective.
  double fit(const std::vector<util::Matrix>& subsystem_scores,
             const std::vector<std::int32_t>& labels, std::size_t num_classes,
             std::vector<double> weights = {}, const FusionConfig& config = {});

  /// Fused per-class log-posterior scores for a test collection.
  [[nodiscard]] util::Matrix apply(
      const std::vector<util::Matrix>& subsystem_scores) const;

  [[nodiscard]] std::size_t num_subsystems() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

  void serialize(std::ostream& out) const;
  static ScoreFusion deserialize(std::istream& in);

 private:
  [[nodiscard]] util::Matrix stack(
      const std::vector<util::Matrix>& subsystem_scores) const;

  std::vector<double> weights_;
  Lda lda_;
  GaussianBackend gaussian_;
  bool use_lda_ = true;
};

/// Normalise subsystem weights per paper Eq. 15: w_n = M_n / Σ_m M_m.
std::vector<double> fusion_weights_from_counts(
    const std::vector<std::size_t>& fit_counts);

}  // namespace phonolid::backend
