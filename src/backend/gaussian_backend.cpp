#include "backend/gaussian_backend.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/math_util.h"

namespace phonolid::backend {

double GaussianBackend::fit(const util::Matrix& x,
                            const std::vector<std::int32_t>& labels,
                            std::size_t num_classes, const MmiConfig& mmi) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || labels.size() != n || num_classes < 2) {
    throw std::invalid_argument("GaussianBackend::fit: bad inputs");
  }

  // --- ML initialisation. ---
  means_.resize(num_classes, d, 0.0f);
  std::vector<std::size_t> counts(num_classes, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    if (c >= num_classes) {
      throw std::invalid_argument("GaussianBackend::fit: bad label");
    }
    ++counts[c];
    auto row = x.row(i);
    auto m = means_.row(c);
    for (std::size_t j = 0; j < d; ++j) m[j] += row[j];
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    auto m = means_.row(c);
    const float inv = 1.0f / static_cast<float>(std::max<std::size_t>(counts[c], 1));
    for (auto& v : m) v *= inv;
  }
  shared_var_.assign(d, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    auto row = x.row(i);
    auto m = means_.row(c);
    for (std::size_t j = 0; j < d; ++j) {
      const float diff = row[j] - m[j];
      shared_var_[j] += diff * diff;
    }
  }
  for (auto& v : shared_var_) {
    v = std::max(v / static_cast<float>(n), 1e-4f);
  }
  log_priors_.assign(num_classes, 0.0f);
  if (mmi.flat_priors) {
    const float lp = -std::log(static_cast<float>(num_classes));
    std::fill(log_priors_.begin(), log_priors_.end(), lp);
  } else {
    for (std::size_t c = 0; c < num_classes; ++c) {
      log_priors_[c] = std::log(
          static_cast<float>(std::max<std::size_t>(counts[c], 1)) /
          static_cast<float>(n));
    }
  }

  // --- MMI gradient ascent on the means (optionally variance). ---
  std::vector<double> post(num_classes);
  util::Matrix grad(num_classes, d);
  std::vector<double> grad_var(d);
  double objective_value = 0.0;
  for (std::size_t iter = 0; iter < mmi.iterations; ++iter) {
    grad.fill(0.0f);
    std::fill(grad_var.begin(), grad_var.end(), 0.0);
    objective_value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      auto row = x.row(i);
      log_likelihoods(row, post);
      for (std::size_t c = 0; c < num_classes; ++c) post[c] += log_priors_[c];
      const double lse = util::log_sum_exp(std::span<const double>(post));
      const auto truth = static_cast<std::size_t>(labels[i]);
      objective_value += post[truth] - lse;
      for (std::size_t c = 0; c < num_classes; ++c) {
        post[c] = std::exp(post[c] - lse);
      }
      // dF/dmu_c = (delta(c=truth) - P(c|x)) * Sigma^-1 (x - mu_c)
      for (std::size_t c = 0; c < num_classes; ++c) {
        const double w = (c == truth ? 1.0 : 0.0) - post[c];
        if (std::abs(w) < 1e-12) continue;
        auto g = grad.row(c);
        auto m = means_.row(c);
        for (std::size_t j = 0; j < d; ++j) {
          const double z = (row[j] - m[j]) / shared_var_[j];
          g[j] += static_cast<float>(w * z);
          if (mmi.update_variance) {
            grad_var[j] += w * 0.5 * (z * z * shared_var_[j] - 1.0) / shared_var_[j];
          }
        }
      }
    }
    const float step =
        static_cast<float>(mmi.learning_rate / static_cast<double>(n));
    for (std::size_t c = 0; c < num_classes; ++c) {
      util::axpy(step, grad.row(c), means_.row(c));
    }
    if (mmi.update_variance) {
      for (std::size_t j = 0; j < d; ++j) {
        shared_var_[j] = std::max(
            shared_var_[j] + static_cast<float>(step * grad_var[j]), 1e-4f);
      }
    }
  }
  return objective_value / static_cast<double>(n);
}

void GaussianBackend::log_likelihoods(std::span<const float> x,
                                      std::span<double> out) const {
  const std::size_t d = dim();
  assert(x.size() == d && out.size() == num_classes());
  double log_det = 0.0;
  for (std::size_t j = 0; j < d; ++j) log_det += std::log(shared_var_[j]);
  const double base =
      -0.5 * (static_cast<double>(d) * std::log(2.0 * std::numbers::pi) + log_det);
  for (std::size_t c = 0; c < num_classes(); ++c) {
    auto m = means_.row(c);
    double quad = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = x[j] - m[j];
      quad += diff * diff / shared_var_[j];
    }
    // Clamp: keeps scores finite even for pathological (degenerate-LDA)
    // inputs so downstream softmax/LLR stay well defined.
    out[c] = std::max(base - 0.5 * quad, -1e30);
  }
}

void GaussianBackend::log_posteriors(std::span<const float> x,
                                     std::span<float> out) const {
  std::vector<double> ll(num_classes());
  log_likelihoods(x, ll);
  for (std::size_t c = 0; c < num_classes(); ++c) ll[c] += log_priors_[c];
  const double lse = util::log_sum_exp(std::span<const double>(ll));
  for (std::size_t c = 0; c < num_classes(); ++c) {
    out[c] = static_cast<float>(ll[c] - lse);
  }
}

util::Matrix GaussianBackend::log_posteriors(const util::Matrix& x) const {
  util::Matrix out(x.rows(), num_classes());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    log_posteriors(x.row(i), out.row(i));
  }
  return out;
}

double GaussianBackend::objective(const util::Matrix& x,
                                  const std::vector<std::int32_t>& labels) const {
  if (x.rows() == 0) return 0.0;
  util::Matrix lp = log_posteriors(x);
  double total = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    total += lp(i, static_cast<std::size_t>(labels[i]));
  }
  return total / static_cast<double>(x.rows());
}

}  // namespace phonolid::backend
