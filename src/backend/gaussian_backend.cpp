#include "backend/gaussian_backend.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "la/batched_gaussian.h"
#include "la/kernels.h"
#include "util/math_util.h"
#include "util/serialize.h"

namespace phonolid::backend {

namespace {
/// Scorer over the current class Gaussians with log-priors folded into the
/// per-class constant.
la::BatchedGaussians make_scorer(const util::Matrix& means,
                                 const std::vector<float>& shared_var,
                                 const std::vector<float>& log_priors) {
  la::BatchedGaussians::Builder builder(means.cols(), means.rows());
  for (std::size_t c = 0; c < means.rows(); ++c) {
    builder.add(means.row(c), shared_var, log_priors[c]);
  }
  return builder.build();
}
}  // namespace

double GaussianBackend::fit(const util::Matrix& x,
                            const std::vector<std::int32_t>& labels,
                            std::size_t num_classes, const MmiConfig& mmi) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || labels.size() != n || num_classes < 2) {
    throw std::invalid_argument("GaussianBackend::fit: bad inputs");
  }

  // --- ML initialisation. ---
  means_.resize(num_classes, d, 0.0f);
  std::vector<std::size_t> counts(num_classes, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    if (c >= num_classes) {
      throw std::invalid_argument("GaussianBackend::fit: bad label");
    }
    ++counts[c];
    auto row = x.row(i);
    auto m = means_.row(c);
    for (std::size_t j = 0; j < d; ++j) m[j] += row[j];
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    auto m = means_.row(c);
    const float inv = 1.0f / static_cast<float>(std::max<std::size_t>(counts[c], 1));
    for (auto& v : m) v *= inv;
  }
  shared_var_.assign(d, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    auto row = x.row(i);
    auto m = means_.row(c);
    for (std::size_t j = 0; j < d; ++j) {
      const float diff = row[j] - m[j];
      shared_var_[j] += diff * diff;
    }
  }
  for (auto& v : shared_var_) {
    v = std::max(v / static_cast<float>(n), 1e-4f);
  }
  log_priors_.assign(num_classes, 0.0f);
  if (mmi.flat_priors) {
    const float lp = -std::log(static_cast<float>(num_classes));
    std::fill(log_priors_.begin(), log_priors_.end(), lp);
  } else {
    for (std::size_t c = 0; c < num_classes; ++c) {
      log_priors_[c] = std::log(
          static_cast<float>(std::max<std::size_t>(counts[c], 1)) /
          static_cast<float>(n));
    }
  }

  // --- MMI gradient ascent on the means (optionally variance). ---
  // Each iteration scores all samples against all classes as one GEMM, and
  // the gradient reduces over samples as a W^T X product with
  //   W(i, c) = delta(c = g(i)) - P(c | x_i):
  //   dF/dmu_c = (sum_i W(i, c) x_i - (sum_i W(i, c)) mu_c) / var.
  util::Matrix post_m;                // n x C: scores, then posteriors
  util::Matrix w(n, num_classes);     // MMI weights
  util::Matrix grad_raw, grad_sq;     // C x d reductions
  util::Matrix xsq;
  if (mmi.update_variance) {
    xsq.resize(n, d);
    for (std::size_t i = 0; i < n; ++i) {
      const float* __restrict__ src = x.row(i).data();
      float* __restrict__ dst = xsq.row(i).data();
      for (std::size_t j = 0; j < d; ++j) dst[j] = src[j] * src[j];
    }
  }
  std::vector<double> col_sum(num_classes);
  std::vector<double> grad_var(d);
  double objective_value = 0.0;
  for (std::size_t iter = 0; iter < mmi.iterations; ++iter) {
    const la::BatchedGaussians scorer =
        make_scorer(means_, shared_var_, log_priors_);
    scorer.score(x, post_m);
    objective_value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      auto row = post_m.row(i);
      const float lse = util::log_sum_exp(row);
      const auto truth = static_cast<std::size_t>(labels[i]);
      objective_value += row[truth] - lse;
      float* __restrict__ wrow = w.row(i).data();
      for (std::size_t c = 0; c < num_classes; ++c) {
        wrow[c] = -std::exp(row[c] - lse);
      }
      wrow[truth] += 1.0f;
    }
    la::gemm_tn(w, x, grad_raw);
    for (std::size_t c = 0; c < num_classes; ++c) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i) s += w(i, c);
      col_sum[c] = s;
    }
    if (mmi.update_variance) {
      // sum_i W(i,c) (x-mu)^2 = (W^T X^2) - 2 mu (W^T X) + s_c mu^2.
      la::gemm_tn(w, xsq, grad_sq);
      std::fill(grad_var.begin(), grad_var.end(), 0.0);
      for (std::size_t c = 0; c < num_classes; ++c) {
        const float* __restrict__ m = means_.row(c).data();
        for (std::size_t j = 0; j < d; ++j) {
          const double v = shared_var_[j];
          const double centred_sq = grad_sq(c, j) -
                                    2.0 * m[j] * grad_raw(c, j) +
                                    col_sum[c] * m[j] * m[j];
          grad_var[j] += 0.5 * (centred_sq / (v * v) - col_sum[c] / v);
        }
      }
    }
    const float step =
        static_cast<float>(mmi.learning_rate / static_cast<double>(n));
    for (std::size_t c = 0; c < num_classes; ++c) {
      float* __restrict__ m = means_.row(c).data();
      for (std::size_t j = 0; j < d; ++j) {
        const float g = static_cast<float>(
            (grad_raw(c, j) - col_sum[c] * m[j]) / shared_var_[j]);
        m[j] += step * g;
      }
    }
    if (mmi.update_variance) {
      for (std::size_t j = 0; j < d; ++j) {
        shared_var_[j] = std::max(
            shared_var_[j] + static_cast<float>(step * grad_var[j]), 1e-4f);
      }
    }
  }
  return objective_value / static_cast<double>(n);
}

void GaussianBackend::log_likelihoods(std::span<const float> x,
                                      std::span<double> out) const {
  const std::size_t d = dim();
  assert(x.size() == d && out.size() == num_classes());
  double log_det = 0.0;
  for (std::size_t j = 0; j < d; ++j) log_det += std::log(shared_var_[j]);
  const double base =
      -0.5 * (static_cast<double>(d) * std::log(2.0 * std::numbers::pi) + log_det);
  for (std::size_t c = 0; c < num_classes(); ++c) {
    auto m = means_.row(c);
    double quad = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = x[j] - m[j];
      quad += diff * diff / shared_var_[j];
    }
    // Clamp: keeps scores finite even for pathological (degenerate-LDA)
    // inputs so downstream softmax/LLR stay well defined.
    out[c] = std::max(base - 0.5 * quad, -1e30);
  }
}

void GaussianBackend::log_posteriors(std::span<const float> x,
                                     std::span<float> out) const {
  std::vector<double> ll(num_classes());
  log_likelihoods(x, ll);
  for (std::size_t c = 0; c < num_classes(); ++c) ll[c] += log_priors_[c];
  const double lse = util::log_sum_exp(std::span<const double>(ll));
  for (std::size_t c = 0; c < num_classes(); ++c) {
    out[c] = static_cast<float>(ll[c] - lse);
  }
}

util::Matrix GaussianBackend::log_posteriors(const util::Matrix& x) const {
  // Batched: all samples against all classes as one GEMM (priors folded
  // into the per-class constant), then a row-wise log-softmax.
  util::Matrix out;
  make_scorer(means_, shared_var_, log_priors_).score(x, out);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    util::log_softmax_inplace(out.row(i));
  }
  return out;
}

double GaussianBackend::objective(const util::Matrix& x,
                                  const std::vector<std::int32_t>& labels) const {
  if (x.rows() == 0) return 0.0;
  util::Matrix lp = log_posteriors(x);
  double total = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    total += lp(i, static_cast<std::size_t>(labels[i]));
  }
  return total / static_cast<double>(x.rows());
}

namespace {
constexpr char kGaussianMagic[4] = {'P', 'G', 'B', 'K'};
constexpr std::uint32_t kGaussianVersion = 1;
}  // namespace

void GaussianBackend::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic(kGaussianMagic, kGaussianVersion);
  util::write_matrix(w, means_);
  w.write_f32_vec(shared_var_);
  w.write_f32_vec(log_priors_);
}

GaussianBackend GaussianBackend::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic(kGaussianMagic, kGaussianVersion);
  GaussianBackend g;
  g.means_ = util::read_matrix(r);
  g.shared_var_ = r.read_f32_vec();
  g.log_priors_ = r.read_f32_vec();
  if (g.shared_var_.size() != g.means_.cols() ||
      g.log_priors_.size() != g.means_.rows()) {
    throw util::SerializeError("GaussianBackend: dimension mismatch");
  }
  return g;
}

}  // namespace phonolid::backend
