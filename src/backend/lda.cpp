#include "backend/lda.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "la/kernels.h"
#include "util/serialize.h"

namespace phonolid::backend {

void symmetric_eigen(const util::Matrix& symmetric,
                     std::vector<double>& eigenvalues,
                     util::Matrix& eigenvectors, std::size_t max_sweeps) {
  const std::size_t n = symmetric.rows();
  if (symmetric.cols() != n) {
    throw std::invalid_argument("symmetric_eigen: matrix not square");
  }
  // Work in double for stability.
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a[i * n + j] = symmetric(i, j);
  }
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  // Cyclic Jacobi sweeps.
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a[p * n + q] * a[p * n + q];
    }
    if (off < 1e-20) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by eigenvalue descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a[i * n + i] > a[j * n + j];
  });
  eigenvalues.resize(n);
  eigenvectors.resize(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    eigenvalues[r] = a[order[r] * n + order[r]];
    for (std::size_t k = 0; k < n; ++k) {
      eigenvectors(r, k) = static_cast<float>(v[k * n + order[r]]);
    }
  }
}

void Lda::fit(const util::Matrix& x, const std::vector<std::int32_t>& labels,
              std::size_t num_classes, std::size_t max_components) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || labels.size() != n || num_classes < 2) {
    throw std::invalid_argument("Lda::fit: bad inputs");
  }

  // Class and global means.
  std::vector<std::vector<double>> class_mean(num_classes,
                                              std::vector<double>(d, 0.0));
  std::vector<std::size_t> class_count(num_classes, 0);
  std::vector<double> global_mean(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    if (c >= num_classes) throw std::invalid_argument("Lda::fit: bad label");
    ++class_count[c];
    auto row = x.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      class_mean[c][j] += row[j];
      global_mean[j] += row[j];
    }
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (class_count[c] == 0) continue;
    for (auto& m : class_mean[c]) m /= static_cast<double>(class_count[c]);
  }
  for (auto& m : global_mean) m /= static_cast<double>(n);

  // Within- and between-class scatter.
  util::Matrix sw(d, d, 0.0f), sb(d, d, 0.0f);
  {
    std::vector<std::vector<double>> sw_d(d, std::vector<double>(d, 0.0));
    std::vector<std::vector<double>> sb_d(d, std::vector<double>(d, 0.0));
    std::vector<double> diff(d);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(labels[i]);
      auto row = x.row(i);
      for (std::size_t j = 0; j < d; ++j) diff[j] = row[j] - class_mean[c][j];
      for (std::size_t j = 0; j < d; ++j) {
        for (std::size_t k = j; k < d; ++k) sw_d[j][k] += diff[j] * diff[k];
      }
    }
    for (std::size_t c = 0; c < num_classes; ++c) {
      if (class_count[c] == 0) continue;
      for (std::size_t j = 0; j < d; ++j) diff[j] = class_mean[c][j] - global_mean[j];
      const auto w = static_cast<double>(class_count[c]);
      for (std::size_t j = 0; j < d; ++j) {
        for (std::size_t k = j; k < d; ++k) sb_d[j][k] += w * diff[j] * diff[k];
      }
    }
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t k = j; k < d; ++k) {
        const double reg = (j == k) ? 1e-4 : 0.0;  // ridge for stability
        sw(j, k) = sw(k, j) = static_cast<float>(sw_d[j][k] / n + reg);
        sb(j, k) = sb(k, j) = static_cast<float>(sb_d[j][k] / n);
      }
    }
  }

  // Whiten by Sw: Sw = U diag(e) U^T  ->  W = diag(e^-1/2) U^T.
  std::vector<double> evals;
  util::Matrix evecs;
  symmetric_eigen(sw, evals, evecs);
  util::Matrix whiten(d, d);
  // Relative floor: directions with (near-)zero within-class scatter would
  // otherwise blow the projection up by arbitrary factors.
  const double eval_floor = std::max(evals.empty() ? 0.0 : evals[0], 0.0) * 1e-6 + 1e-10;
  for (std::size_t r = 0; r < d; ++r) {
    const double scale = 1.0 / std::sqrt(std::max(evals[r], eval_floor));
    for (std::size_t k = 0; k < d; ++k) {
      whiten(r, k) = static_cast<float>(scale * evecs(r, k));
    }
  }

  // Eigen-decompose whitened Sb: B = W Sb W^T, both products as GEMMs.
  util::Matrix tmp, b;
  la::gemm(whiten, sb, tmp);
  la::gemm_nt(tmp, whiten, b);
  // Symmetrise against round-off.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      const float avg = 0.5f * (b(i, j) + b(j, i));
      b(i, j) = b(j, i) = avg;
    }
  }
  std::vector<double> b_evals;
  util::Matrix b_evecs;
  symmetric_eigen(b, b_evals, b_evecs);

  std::size_t keep = std::min(num_classes - 1, d);
  if (max_components > 0) keep = std::min(keep, max_components);

  // projection = top-k rows of (b_evecs * whiten).
  util::Matrix full_projection;
  la::gemm(b_evecs, whiten, full_projection);
  projection_.resize(keep, d);
  for (std::size_t r = 0; r < keep; ++r) {
    auto src = full_projection.row(r);
    std::copy(src.begin(), src.end(), projection_.row(r).begin());
  }
  mean_.resize(d);
  for (std::size_t j = 0; j < d; ++j) mean_[j] = static_cast<float>(global_mean[j]);
}

void Lda::transform(std::span<const float> in, std::span<float> out) const {
  assert(in.size() == input_dim() && out.size() == output_dim());
  std::vector<float> centered(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) centered[j] = in[j] - mean_[j];
  util::matvec(projection_, centered, out);
}

util::Matrix Lda::transform(const util::Matrix& x) const {
  // Batched projection: centre every row, then one (X - mu) P^T GEMM.
  util::Matrix centered(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* __restrict__ src = x.row(i).data();
    float* __restrict__ dst = centered.row(i).data();
    for (std::size_t j = 0; j < x.cols(); ++j) dst[j] = src[j] - mean_[j];
  }
  util::Matrix out;
  la::gemm_nt(centered, projection_, out);
  return out;
}

namespace {
constexpr char kLdaMagic[4] = {'P', 'L', 'D', 'A'};
constexpr std::uint32_t kLdaVersion = 1;
}  // namespace

void Lda::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic(kLdaMagic, kLdaVersion);
  util::write_matrix(w, projection_);
  w.write_f32_vec(mean_);
}

Lda Lda::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic(kLdaMagic, kLdaVersion);
  Lda lda;
  lda.projection_ = util::read_matrix(r);
  lda.mean_ = r.read_f32_vec();
  if (lda.projection_.rows() > 0 &&
      lda.mean_.size() != lda.projection_.cols()) {
    throw util::SerializeError("Lda: mean / projection dimension mismatch");
  }
  return lda;
}

}  // namespace phonolid::backend
