// Linear discriminant analysis for score-vector calibration.
//
// The "LDA" half of the paper's LDA-MMI fusion backend [31]: stacked
// subsystem score vectors are rotated into a subspace that maximises
// between-class over within-class scatter before Gaussian modeling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/matrix.h"

namespace phonolid::backend {

/// Jacobi eigendecomposition of a symmetric matrix.  `eigenvalues` sorted
/// descending; `eigenvectors` rows are the corresponding unit vectors.
void symmetric_eigen(const util::Matrix& symmetric,
                     std::vector<double>& eigenvalues,
                     util::Matrix& eigenvectors, std::size_t max_sweeps = 64);

class Lda {
 public:
  Lda() = default;

  /// Fit on rows of `x` with class labels `labels` (0..num_classes-1);
  /// keeps min(num_classes-1, dim, requested) discriminant directions.
  void fit(const util::Matrix& x, const std::vector<std::int32_t>& labels,
           std::size_t num_classes, std::size_t max_components = 0);

  [[nodiscard]] bool fitted() const noexcept { return projection_.rows() > 0; }
  [[nodiscard]] std::size_t input_dim() const noexcept {
    return projection_.cols();
  }
  [[nodiscard]] std::size_t output_dim() const noexcept {
    return projection_.rows();
  }

  /// Project one row / a whole matrix.
  void transform(std::span<const float> in, std::span<float> out) const;
  [[nodiscard]] util::Matrix transform(const util::Matrix& x) const;

  void serialize(std::ostream& out) const;
  static Lda deserialize(std::istream& in);

 private:
  util::Matrix projection_;      // output_dim x input_dim
  std::vector<float> mean_;      // subtracted before projecting
};

}  // namespace phonolid::backend
