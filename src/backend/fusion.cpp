#include "backend/fusion.h"

#include <stdexcept>

#include "util/serialize.h"

namespace phonolid::backend {

std::vector<double> fusion_weights_from_counts(
    const std::vector<std::size_t>& fit_counts) {
  std::vector<double> weights(fit_counts.size(), 0.0);
  double total = 0.0;
  for (std::size_t c : fit_counts) total += static_cast<double>(c);
  if (total <= 0.0) {
    // No subsystem adopted anything: fall back to uniform.
    const double u = 1.0 / static_cast<double>(std::max<std::size_t>(
                               fit_counts.size(), 1));
    std::fill(weights.begin(), weights.end(), u);
    return weights;
  }
  for (std::size_t i = 0; i < fit_counts.size(); ++i) {
    weights[i] = static_cast<double>(fit_counts[i]) / total;
  }
  return weights;
}

util::Matrix ScoreFusion::stack(
    const std::vector<util::Matrix>& subsystem_scores) const {
  if (subsystem_scores.empty()) {
    throw std::invalid_argument("ScoreFusion: no subsystems");
  }
  const std::size_t q = subsystem_scores.size();
  const std::size_t rows = subsystem_scores[0].rows();
  const std::size_t k = subsystem_scores[0].cols();
  for (const auto& s : subsystem_scores) {
    if (s.rows() != rows || s.cols() != k) {
      throw std::invalid_argument("ScoreFusion: inconsistent score matrices");
    }
  }
  util::Matrix x(rows, q * k);
  for (std::size_t i = 0; i < rows; ++i) {
    auto dst = x.row(i);
    for (std::size_t s = 0; s < q; ++s) {
      auto src = subsystem_scores[s].row(i);
      const auto w = static_cast<float>(weights_[s]);
      for (std::size_t j = 0; j < k; ++j) dst[s * k + j] = w * src[j];
    }
  }
  return x;
}

double ScoreFusion::fit(const std::vector<util::Matrix>& subsystem_scores,
                        const std::vector<std::int32_t>& labels,
                        std::size_t num_classes, std::vector<double> weights,
                        const FusionConfig& config) {
  const std::size_t q = subsystem_scores.size();
  if (q == 0) throw std::invalid_argument("ScoreFusion::fit: no subsystems");
  if (weights.empty()) {
    weights.assign(q, 1.0 / static_cast<double>(q));
  }
  if (weights.size() != q) {
    throw std::invalid_argument("ScoreFusion::fit: weight count mismatch");
  }
  // Enforce Σ w = 1 (Eq. 15).
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("ScoreFusion::fit: bad weights");
  for (auto& w : weights) w /= total;
  weights_ = std::move(weights);
  use_lda_ = config.use_lda;

  util::Matrix x = stack(subsystem_scores);
  if (use_lda_) {
    lda_.fit(x, labels, num_classes, config.lda_components);
    x = lda_.transform(x);
  }
  return gaussian_.fit(x, labels, num_classes, config.mmi);
}

util::Matrix ScoreFusion::apply(
    const std::vector<util::Matrix>& subsystem_scores) const {
  util::Matrix x = stack(subsystem_scores);
  if (use_lda_) x = lda_.transform(x);
  return gaussian_.log_posteriors(x);
}

namespace {
constexpr char kFusionMagic[4] = {'P', 'F', 'U', 'S'};
constexpr std::uint32_t kFusionVersion = 1;
}  // namespace

void ScoreFusion::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic(kFusionMagic, kFusionVersion);
  w.write_f64_vec(weights_);
  w.write_u32(use_lda_ ? 1 : 0);
  lda_.serialize(out);
  gaussian_.serialize(out);
}

ScoreFusion ScoreFusion::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic(kFusionMagic, kFusionVersion);
  ScoreFusion fusion;
  fusion.weights_ = r.read_f64_vec();
  fusion.use_lda_ = r.read_u32() != 0;
  fusion.lda_ = Lda::deserialize(in);
  fusion.gaussian_ = GaussianBackend::deserialize(in);
  return fusion;
}

}  // namespace phonolid::backend
