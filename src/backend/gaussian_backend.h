// Gaussian score backend with MMI refinement (paper Eq. 14).
//
// Each class is a diagonal Gaussian over (LDA-projected) score vectors with
// a shared covariance; generative (ML) initialisation is refined by
// gradient ascent on the MMI criterion
//   F(λ) = Σ_i log [ p(x_i|λ_{g(i)}) P(g(i)) / Σ_j p(x_i|λ_j) P(j) ],
// which directly maximises the posterior of the correct language — the
// "MMI" half of the LDA-MMI calibration backend [31].
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/matrix.h"

namespace phonolid::backend {

struct MmiConfig {
  std::size_t iterations = 40;
  double learning_rate = 0.1;
  /// Also adapt the shared variance (means-only when false).
  bool update_variance = false;
  /// Equal class priors when true (NIST LRE convention), else empirical.
  bool flat_priors = true;
};

class GaussianBackend {
 public:
  GaussianBackend() = default;

  /// ML initialisation on rows of `x` with labels; then `mmi.iterations`
  /// MMI gradient steps.  Returns the final MMI objective per sample.
  double fit(const util::Matrix& x, const std::vector<std::int32_t>& labels,
             std::size_t num_classes, const MmiConfig& mmi = {});

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return means_.rows();
  }
  [[nodiscard]] std::size_t dim() const noexcept { return means_.cols(); }

  /// Per-class log-posteriors (log-softmax of loglik + logprior).
  void log_posteriors(std::span<const float> x, std::span<float> out) const;
  [[nodiscard]] util::Matrix log_posteriors(const util::Matrix& x) const;

  /// MMI objective (mean log posterior of the true class) on a dataset.
  [[nodiscard]] double objective(const util::Matrix& x,
                                 const std::vector<std::int32_t>& labels) const;

  void serialize(std::ostream& out) const;
  static GaussianBackend deserialize(std::istream& in);

 private:
  void log_likelihoods(std::span<const float> x, std::span<double> out) const;

  util::Matrix means_;             // num_classes x dim
  std::vector<float> shared_var_;  // dim (shared diagonal covariance)
  std::vector<float> log_priors_;  // num_classes
};

}  // namespace phonolid::backend
