#include "acoustic/ubm.h"

#include <cmath>
#include <stdexcept>

#include "dsp/features.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace phonolid::acoustic {

util::Matrix UbmLrSystem::features_of(const std::vector<float>& samples) const {
  util::Matrix ceps = mfcc_.extract(samples);
  if (config_.cmvn) dsp::cmvn_inplace(ceps, true);
  return compute_sdc(ceps, config_.sdc);
}

UbmLrSystem UbmLrSystem::train(const corpus::Dataset& train,
                               std::size_t num_languages,
                               const UbmMapConfig& config) {
  if (train.empty() || num_languages == 0) {
    throw std::invalid_argument("UbmLrSystem::train: bad inputs");
  }
  UbmLrSystem system;
  system.config_ = config;
  system.mfcc_ = dsp::MfccExtractor(config.mfcc);

  // Extract all features once (parallel over utterances).
  std::vector<util::Matrix> features(train.size());
  util::parallel_for(0, train.size(), [&](std::size_t i) {
    features[i] = system.features_of(train[i].samples);
  });
  const std::size_t dim = sdc_dim(config.sdc);
  std::size_t total_frames = 0;
  for (const auto& f : features) total_frames += f.rows();
  if (total_frames == 0) {
    throw std::invalid_argument("UbmLrSystem::train: no frames");
  }

  // --- UBM on (subsampled) pooled frames. ---
  util::Rng rng(util::derive_stream(config.seed, 0x0B17));
  const std::size_t ubm_frames =
      config.max_ubm_frames > 0
          ? std::min(total_frames, config.max_ubm_frames)
          : total_frames;
  const double keep = static_cast<double>(ubm_frames) /
                      static_cast<double>(total_frames);
  util::Matrix pool(ubm_frames, dim);
  std::size_t cursor = 0;
  for (const auto& f : features) {
    for (std::size_t t = 0; t < f.rows() && cursor < ubm_frames; ++t) {
      if (keep < 1.0 && !rng.bernoulli(keep)) continue;
      auto src = f.row(t);
      std::copy(src.begin(), src.end(), pool.row(cursor++).begin());
    }
  }
  pool.resize(cursor == 0 ? 1 : cursor, dim);
  if (cursor == 0) {
    throw std::invalid_argument("UbmLrSystem::train: subsampling left nothing");
  }
  am::GmmTrainConfig ubm_cfg;
  ubm_cfg.num_components = config.ubm_components;
  ubm_cfg.em_iters = config.ubm_em_iters;
  ubm_cfg.seed = util::derive_stream(config.seed, 0x0B18);
  system.ubm_.train(pool, ubm_cfg);

  // --- MAP adaptation of means, per language. ---
  const std::size_t m = system.ubm_.num_components();
  std::vector<util::Matrix> acc_x(num_languages, util::Matrix(m, dim, 0.0f));
  std::vector<std::vector<double>> acc_gamma(num_languages,
                                             std::vector<double>(m, 0.0));
  std::vector<double> post(m);
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto lang = static_cast<std::size_t>(train[i].language);
    if (train[i].language < 0 || lang >= num_languages) {
      throw std::invalid_argument("UbmLrSystem::train: bad label");
    }
    const auto& f = features[i];
    for (std::size_t t = 0; t < f.rows(); ++t) {
      auto row = f.row(t);
      // Component posteriors under the UBM.
      double best = -1e300;
      for (std::size_t c = 0; c < m; ++c) {
        post[c] = system.ubm_.log_weights()[c] +
                  system.ubm_.component(c).log_likelihood(row);
        best = std::max(best, post[c]);
      }
      double sum = 0.0;
      for (std::size_t c = 0; c < m; ++c) {
        post[c] = std::exp(post[c] - best);
        sum += post[c];
      }
      const double inv = 1.0 / sum;
      for (std::size_t c = 0; c < m; ++c) {
        const double g = post[c] * inv;
        if (g < 1e-6) continue;
        acc_gamma[lang][c] += g;
        util::axpy(static_cast<float>(g), row, acc_x[lang].row(c));
      }
    }
  }
  system.adapted_means_.resize(num_languages);
  for (std::size_t l = 0; l < num_languages; ++l) {
    util::Matrix& means = system.adapted_means_[l];
    means.resize(m, dim);
    for (std::size_t c = 0; c < m; ++c) {
      const double gamma = acc_gamma[l][c];
      const auto& ubm_mean = system.ubm_.component(c).mean();
      auto dst = means.row(c);
      for (std::size_t d = 0; d < dim; ++d) {
        // Reynolds MAP: (sum gamma x + tau mu) / (gamma + tau).
        dst[d] = static_cast<float>(
            (acc_x[l](c, d) + config.relevance * ubm_mean[d]) /
            (gamma + config.relevance));
      }
    }
  }
  PHONOLID_INFO("acoustic") << "trained GMM-UBM: " << m << " components, "
                            << num_languages << " MAP-adapted languages";
  return system;
}

double UbmLrSystem::adapted_log_likelihood(std::span<const float> x,
                                           std::size_t l) const {
  const std::size_t m = ubm_.num_components();
  double lls[64];
  double best = -1e300;
  for (std::size_t c = 0; c < m; ++c) {
    // Shared UBM covariances/weights, adapted mean.
    const auto& var = ubm_.component(c).var();
    const auto mean = adapted_means_[l].row(c);
    double quad = 0.0, log_det = 0.0;
    for (std::size_t d = 0; d < x.size(); ++d) {
      const double diff = x[d] - mean[d];
      quad += diff * diff / var[d];
      log_det += std::log(static_cast<double>(var[d]));
    }
    lls[c] = ubm_.log_weights()[c] -
             0.5 * (static_cast<double>(x.size()) * std::log(2.0 * 3.14159265358979) +
                    log_det + quad);
    best = std::max(best, lls[c]);
  }
  double sum = 0.0;
  for (std::size_t c = 0; c < m; ++c) sum += std::exp(lls[c] - best);
  return best + std::log(sum);
}

void UbmLrSystem::score(const corpus::Utterance& utt,
                        std::span<float> out) const {
  if (out.size() != num_languages()) {
    throw std::invalid_argument("UbmLrSystem::score: bad output span");
  }
  const util::Matrix feats = features_of(utt.samples);
  std::vector<double> totals(num_languages(), 0.0);
  double ubm_total = 0.0;
  for (std::size_t t = 0; t < feats.rows(); ++t) {
    auto row = feats.row(t);
    ubm_total += ubm_.log_likelihood(row);
    for (std::size_t l = 0; l < num_languages(); ++l) {
      totals[l] += adapted_log_likelihood(row, l);
    }
  }
  const double inv =
      feats.rows() > 0 ? 1.0 / static_cast<double>(feats.rows()) : 0.0;
  for (std::size_t l = 0; l < num_languages(); ++l) {
    out[l] = static_cast<float>((totals[l] - ubm_total) * inv);
  }
}

util::Matrix UbmLrSystem::score_all(const corpus::Dataset& data) const {
  util::Matrix scores(data.size(), num_languages());
  util::parallel_for(0, data.size(), [&](std::size_t i) {
    score(data[i], scores.row(i));
  });
  return scores;
}

}  // namespace phonolid::acoustic
