#include "acoustic/ubm.h"

#include <cmath>
#include <stdexcept>

#include "dsp/features.h"
#include "la/kernels.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace phonolid::acoustic {

util::Matrix UbmLrSystem::features_of(const std::vector<float>& samples) const {
  util::Matrix ceps = mfcc_.extract(samples);
  if (config_.cmvn) dsp::cmvn_inplace(ceps, true);
  return compute_sdc(ceps, config_.sdc);
}

UbmLrSystem UbmLrSystem::train(const corpus::Dataset& train,
                               std::size_t num_languages,
                               const UbmMapConfig& config) {
  if (train.empty() || num_languages == 0) {
    throw std::invalid_argument("UbmLrSystem::train: bad inputs");
  }
  UbmLrSystem system;
  system.config_ = config;
  system.mfcc_ = dsp::MfccExtractor(config.mfcc);

  // Extract all features once (parallel over utterances).
  std::vector<util::Matrix> features(train.size());
  util::parallel_for(0, train.size(), [&](std::size_t i) {
    features[i] = system.features_of(train[i].samples);
  });
  const std::size_t dim = sdc_dim(config.sdc);
  std::size_t total_frames = 0;
  for (const auto& f : features) total_frames += f.rows();
  if (total_frames == 0) {
    throw std::invalid_argument("UbmLrSystem::train: no frames");
  }

  // --- UBM on (subsampled) pooled frames. ---
  util::Rng rng(util::derive_stream(config.seed, 0x0B17));
  const std::size_t ubm_frames =
      config.max_ubm_frames > 0
          ? std::min(total_frames, config.max_ubm_frames)
          : total_frames;
  const double keep = static_cast<double>(ubm_frames) /
                      static_cast<double>(total_frames);
  util::Matrix pool(ubm_frames, dim);
  std::size_t cursor = 0;
  for (const auto& f : features) {
    for (std::size_t t = 0; t < f.rows() && cursor < ubm_frames; ++t) {
      if (keep < 1.0 && !rng.bernoulli(keep)) continue;
      auto src = f.row(t);
      std::copy(src.begin(), src.end(), pool.row(cursor++).begin());
    }
  }
  pool.resize(cursor == 0 ? 1 : cursor, dim);
  if (cursor == 0) {
    throw std::invalid_argument("UbmLrSystem::train: subsampling left nothing");
  }
  am::GmmTrainConfig ubm_cfg;
  ubm_cfg.num_components = config.ubm_components;
  ubm_cfg.em_iters = config.ubm_em_iters;
  ubm_cfg.seed = util::derive_stream(config.seed, 0x0B18);
  system.ubm_.train(pool, ubm_cfg);

  // --- MAP adaptation of means, per language. ---
  // Component posteriors for a whole utterance come from one batched GEMM
  // against the UBM; the zeroth/first-order statistics are then a column
  // sum and a Gamma^T X product.
  const std::size_t m = system.ubm_.num_components();
  std::vector<util::Matrix> acc_x(num_languages, util::Matrix(m, dim, 0.0f));
  std::vector<std::vector<double>> acc_gamma(num_languages,
                                             std::vector<double>(m, 0.0));
  util::Matrix gamma;
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto lang = static_cast<std::size_t>(train[i].language);
    if (train[i].language < 0 || lang >= num_languages) {
      throw std::invalid_argument("UbmLrSystem::train: bad label");
    }
    const auto& f = features[i];
    if (f.rows() == 0) continue;
    system.ubm_.component_log_likelihoods(f, gamma);
    for (std::size_t t = 0; t < f.rows(); ++t) {
      auto row = gamma.row(t);
      const float lse = util::log_sum_exp(row);
      for (std::size_t c = 0; c < m; ++c) {
        row[c] = std::exp(row[c] - lse);
        acc_gamma[lang][c] += row[c];
      }
    }
    la::gemm_tn(gamma, f, acc_x[lang], 1.0f, /*accumulate=*/true);
  }
  system.adapted_means_.resize(num_languages);
  for (std::size_t l = 0; l < num_languages; ++l) {
    util::Matrix& means = system.adapted_means_[l];
    means.resize(m, dim);
    for (std::size_t c = 0; c < m; ++c) {
      const double gamma = acc_gamma[l][c];
      const auto& ubm_mean = system.ubm_.component(c).mean();
      auto dst = means.row(c);
      for (std::size_t d = 0; d < dim; ++d) {
        // Reynolds MAP: (sum gamma x + tau mu) / (gamma + tau).
        dst[d] = static_cast<float>(
            (acc_x[l](c, d) + config.relevance * ubm_mean[d]) /
            (gamma + config.relevance));
      }
    }
  }
  system.rebuild_adapted_scorer();
  PHONOLID_INFO("acoustic") << "trained GMM-UBM: " << m << " components, "
                            << num_languages << " MAP-adapted languages";
  return system;
}

void UbmLrSystem::rebuild_adapted_scorer() {
  const std::size_t m = ubm_.num_components();
  const std::size_t langs = adapted_means_.size();
  la::BatchedGaussians::Builder builder(ubm_.dim(), langs * m);
  lang_seg_.clear();
  lang_seg_.reserve(langs + 1);
  lang_seg_.push_back(0);
  for (std::size_t l = 0; l < langs; ++l) {
    for (std::size_t c = 0; c < m; ++c) {
      // Shared UBM covariances/weights, adapted mean.
      builder.add(adapted_means_[l].row(c), ubm_.component(c).var(),
                  ubm_.log_weights()[c]);
    }
    lang_seg_.push_back(lang_seg_.back() + m);
  }
  adapted_all_ = builder.build();
}

void UbmLrSystem::score(const corpus::Utterance& utt,
                        std::span<float> out) const {
  if (out.size() != num_languages()) {
    throw std::invalid_argument("UbmLrSystem::score: bad output span");
  }
  const util::Matrix feats = features_of(utt.samples);
  const std::size_t langs = num_languages();
  std::vector<double> totals(langs, 0.0);
  double ubm_total = 0.0;
  std::vector<float> ubm_ll;
  ubm_.log_likelihoods(feats, ubm_ll);
  for (const float ll : ubm_ll) ubm_total += ll;
  // All languages' adapted mixtures score as one GEMM; the per-language
  // mixture reduction is a segment log-sum-exp over the packed row.
  util::Matrix comp_scores;
  adapted_all_.score(feats, comp_scores);
  std::vector<float> lang_ll(langs);
  for (std::size_t t = 0; t < feats.rows(); ++t) {
    la::logsumexp_segments(comp_scores.row(t), lang_seg_, lang_ll);
    for (std::size_t l = 0; l < langs; ++l) totals[l] += lang_ll[l];
  }
  const double inv =
      feats.rows() > 0 ? 1.0 / static_cast<double>(feats.rows()) : 0.0;
  for (std::size_t l = 0; l < langs; ++l) {
    out[l] = static_cast<float>((totals[l] - ubm_total) * inv);
  }
}

util::Matrix UbmLrSystem::score_all(const corpus::Dataset& data) const {
  util::Matrix scores(data.size(), num_languages());
  util::parallel_for(0, data.size(), [&](std::size_t i) {
    score(data[i], scores.row(i));
  });
  return scores;
}

}  // namespace phonolid::acoustic
