// GMM acoustic language recognition (the paper's reference [3]).
//
// The other major LR family the paper's introduction contrasts with
// phonotactic systems: one GMM per target language over SDC-augmented
// cepstral features, scored by average frame log-likelihood.  Included as
// a comparison baseline for the PPRVSM/DBA systems.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "acoustic/sdc.h"
#include "am/gmm.h"
#include "corpus/dataset.h"
#include "dsp/features.h"
#include "util/matrix.h"

namespace phonolid::acoustic {

struct GmmLrConfig {
  dsp::MfccConfig mfcc;
  SdcConfig sdc;
  am::GmmTrainConfig gmm;
  bool cmvn = true;
  std::uint64_t seed = 1;

  GmmLrConfig() { gmm.num_components = 16; }
};

class GmmLrSystem {
 public:
  /// Train one GMM per target language on the training set (parallel over
  /// languages).
  static GmmLrSystem train(const corpus::Dataset& train,
                           std::size_t num_languages,
                           const GmmLrConfig& config = {});

  [[nodiscard]] std::size_t num_languages() const noexcept {
    return models_.size();
  }

  /// Per-language average frame log-likelihoods for one utterance.
  void score(const corpus::Utterance& utt, std::span<float> out) const;

  /// Score a whole dataset: rows = utterances, cols = languages.
  [[nodiscard]] util::Matrix score_all(const corpus::Dataset& data) const;

 private:
  [[nodiscard]] util::Matrix features_of(
      const std::vector<float>& samples) const;

  GmmLrConfig config_;
  dsp::MfccExtractor mfcc_{dsp::MfccConfig{}};
  std::vector<am::DiagGmm> models_;
};

}  // namespace phonolid::acoustic
