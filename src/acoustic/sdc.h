// Shifted delta cepstra (SDC).
//
// The classic acoustic-LR feature (Torres-Carrasquillo et al. 2002, the
// paper's reference [3]): for each frame, k delta blocks computed d frames
// apart and advanced by p frames are stacked onto the static cepstra,
// capturing long-span temporal dynamics.  Parameterised by the standard
// N-d-P-k notation (default 7-1-3-7).
#pragma once

#include <cstddef>

#include "util/matrix.h"

namespace phonolid::acoustic {

struct SdcConfig {
  std::size_t n = 7;  // number of leading cepstra used
  std::size_t d = 1;  // delta half-window
  std::size_t p = 3;  // block advance
  std::size_t k = 7;  // number of blocks
};

/// Output dimension: n static + n*k shifted deltas.
std::size_t sdc_dim(const SdcConfig& config) noexcept;

/// Computes SDC features from a static cepstral matrix (frames x ceps).
/// Frames whose delta windows extend past the ends are clamped.
/// `cepstra.cols()` must be >= config.n.
util::Matrix compute_sdc(const util::Matrix& cepstra, const SdcConfig& config);

}  // namespace phonolid::acoustic
