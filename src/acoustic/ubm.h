// GMM-UBM acoustic language recognition with MAP adaptation.
//
// The stronger classical acoustic-LR recipe (Reynolds-style): one
// universal background model (UBM) trained on all languages pooled, then
// per-language models derived by MAP adaptation of the UBM means.  Scoring
// is the average-frame log-likelihood ratio against the UBM, which
// normalises away channel/speaker effects that a plain per-language GMM
// (acoustic/gmm_lr.h) absorbs into its likelihoods.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "acoustic/sdc.h"
#include "am/gmm.h"
#include "corpus/dataset.h"
#include "dsp/mfcc.h"
#include "util/matrix.h"

namespace phonolid::acoustic {

struct UbmMapConfig {
  dsp::MfccConfig mfcc;
  SdcConfig sdc;
  std::size_t ubm_components = 32;
  std::size_t ubm_em_iters = 8;
  /// MAP relevance factor (Reynolds' tau); larger = stay closer to the UBM.
  double relevance = 16.0;
  /// Subsample cap on UBM training frames (0 = use everything).
  std::size_t max_ubm_frames = 60000;
  bool cmvn = true;
  std::uint64_t seed = 1;
};

class UbmLrSystem {
 public:
  /// Trains the UBM on pooled frames, then MAP-adapts one model per
  /// language.
  static UbmLrSystem train(const corpus::Dataset& train,
                           std::size_t num_languages,
                           const UbmMapConfig& config = {});

  [[nodiscard]] std::size_t num_languages() const noexcept {
    return adapted_means_.size();
  }
  [[nodiscard]] const am::DiagGmm& ubm() const noexcept { return ubm_; }

  /// Per-language average-frame log-likelihood ratios vs the UBM.
  void score(const corpus::Utterance& utt, std::span<float> out) const;
  [[nodiscard]] util::Matrix score_all(const corpus::Dataset& data) const;

 private:
  [[nodiscard]] util::Matrix features_of(
      const std::vector<float>& samples) const;
  /// Packs every language's adapted components (shared UBM weights and
  /// variances) into one GEMM scorer; built eagerly at the end of train().
  void rebuild_adapted_scorer();

  UbmMapConfig config_;
  dsp::MfccExtractor mfcc_{dsp::MfccConfig{}};
  am::DiagGmm ubm_;
  /// adapted_means_[l] : components x dim matrix of MAP-adapted means.
  std::vector<util::Matrix> adapted_means_;
  la::BatchedGaussians adapted_all_;      // num_languages * m components
  std::vector<std::size_t> lang_seg_;     // per-language component offsets
};

}  // namespace phonolid::acoustic
