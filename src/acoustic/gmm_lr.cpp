#include "acoustic/gmm_lr.h"

#include <stdexcept>

#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace phonolid::acoustic {

util::Matrix GmmLrSystem::features_of(const std::vector<float>& samples) const {
  util::Matrix ceps = mfcc_.extract(samples);
  if (config_.cmvn) dsp::cmvn_inplace(ceps, true);
  return compute_sdc(ceps, config_.sdc);
}

GmmLrSystem GmmLrSystem::train(const corpus::Dataset& train,
                               std::size_t num_languages,
                               const GmmLrConfig& config) {
  if (train.empty() || num_languages == 0) {
    throw std::invalid_argument("GmmLrSystem::train: bad inputs");
  }
  GmmLrSystem system;
  system.config_ = config;
  system.mfcc_ = dsp::MfccExtractor(config.mfcc);
  system.models_.resize(num_languages);

  // Pool SDC frames per language.
  std::vector<util::Matrix> frames_per_lang(num_languages);
  {
    // First pass: count frames; second: fill (avoids vector-of-vector
    // reallocation for what can be hundreds of thousands of frames).
    std::vector<std::size_t> frame_count(num_languages, 0);
    std::vector<util::Matrix> features(train.size());
    util::parallel_for(0, train.size(), [&](std::size_t i) {
      features[i] = system.features_of(train[i].samples);
    });
    for (std::size_t i = 0; i < train.size(); ++i) {
      const auto lang = static_cast<std::size_t>(train[i].language);
      if (train[i].language < 0 || lang >= num_languages) {
        throw std::invalid_argument("GmmLrSystem::train: bad label");
      }
      frame_count[lang] += features[i].rows();
    }
    const std::size_t dim = sdc_dim(config.sdc);
    for (std::size_t l = 0; l < num_languages; ++l) {
      frames_per_lang[l].resize(frame_count[l], dim);
    }
    std::vector<std::size_t> cursor(num_languages, 0);
    for (std::size_t i = 0; i < train.size(); ++i) {
      const auto lang = static_cast<std::size_t>(train[i].language);
      for (std::size_t t = 0; t < features[i].rows(); ++t) {
        auto src = features[i].row(t);
        std::copy(src.begin(), src.end(),
                  frames_per_lang[lang].row(cursor[lang]++).begin());
      }
    }
  }

  util::parallel_for(0, num_languages, [&](std::size_t l) {
    if (frames_per_lang[l].rows() == 0) {
      throw std::invalid_argument("GmmLrSystem::train: language " +
                                  std::to_string(l) + " has no data");
    }
    am::GmmTrainConfig gmm_cfg = config.gmm;
    gmm_cfg.seed = util::derive_stream(config.seed, 0xAC00 + l);
    system.models_[l].train(frames_per_lang[l], gmm_cfg);
  });
  PHONOLID_INFO("acoustic") << "trained GMM-LR: " << num_languages
                            << " languages, " << config.gmm.num_components
                            << " components, dim " << sdc_dim(config.sdc);
  return system;
}

void GmmLrSystem::score(const corpus::Utterance& utt,
                        std::span<float> out) const {
  if (out.size() != models_.size()) {
    throw std::invalid_argument("GmmLrSystem::score: bad output span");
  }
  const util::Matrix feats = features_of(utt.samples);
  for (std::size_t l = 0; l < models_.size(); ++l) {
    out[l] = static_cast<float>(models_[l].average_log_likelihood(feats));
  }
}

util::Matrix GmmLrSystem::score_all(const corpus::Dataset& data) const {
  util::Matrix scores(data.size(), models_.size());
  util::parallel_for(0, data.size(), [&](std::size_t i) {
    score(data[i], scores.row(i));
  });
  return scores;
}

}  // namespace phonolid::acoustic
