#include "acoustic/sdc.h"

#include <algorithm>
#include <stdexcept>

namespace phonolid::acoustic {

std::size_t sdc_dim(const SdcConfig& config) noexcept {
  return config.n * (1 + config.k);
}

util::Matrix compute_sdc(const util::Matrix& cepstra, const SdcConfig& config) {
  if (cepstra.cols() < config.n) {
    throw std::invalid_argument("compute_sdc: too few cepstral coefficients");
  }
  const std::size_t frames = cepstra.rows();
  const auto t_max = static_cast<std::ptrdiff_t>(frames) - 1;
  util::Matrix out(frames, sdc_dim(config));
  if (frames == 0) return out;

  const auto value = [&](std::ptrdiff_t t, std::size_t c) {
    t = std::clamp<std::ptrdiff_t>(t, 0, t_max);
    return cepstra(static_cast<std::size_t>(t), c);
  };

  for (std::size_t t = 0; t < frames; ++t) {
    auto row = out.row(t);
    for (std::size_t c = 0; c < config.n; ++c) row[c] = cepstra(t, c);
    for (std::size_t block = 0; block < config.k; ++block) {
      const auto center =
          static_cast<std::ptrdiff_t>(t + block * config.p);
      const auto dd = static_cast<std::ptrdiff_t>(config.d);
      for (std::size_t c = 0; c < config.n; ++c) {
        row[config.n * (1 + block) + c] =
            value(center + dd, c) - value(center - dd, c);
      }
    }
  }
  return out;
}

}  // namespace phonolid::acoustic
