#include "pipeline/stage_runner.h"

#include <future>

#include "obs/trace.h"

namespace phonolid::pipeline {

void StageRunner::add(std::string name, std::function<void()> fn) {
  stages_.push_back({std::move(name), std::move(fn)});
}

void StageRunner::run_all() {
  std::vector<Stage> stages = std::move(stages_);
  stages_.clear();
  if (stages.empty()) return;
  if (stages.size() == 1) {
    obs::Span span(stages[0].name.c_str());
    stages[0].fn();
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(stages.size());
  for (Stage& stage : stages) {
    // stage.name outlives the span: `stages` is alive until every future
    // below completed.
    futures.push_back(pool_.submit([&stage] {
      obs::Span span(stage.name.c_str());
      stage.fn();
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    pool_.wait_helping(f);
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace phonolid::pipeline
