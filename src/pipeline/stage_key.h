// Content-addressed stage keys.
//
// A StageKey fingerprints everything that determines a stage's output: the
// serialized stage configuration, the keys of its upstream stages, the
// experiment seed and the on-disk format version.  Equal keys => the cached
// artifact is byte-reusable; any config / seed / upstream / format change
// flips the key and the stage recomputes (invalidation is purely by
// content, never by timestamps).
//
// The fingerprint is 64-bit FNV-1a over *tagged* fields — every add_* call
// mixes a type tag and, for variable-length data, the length, so field
// sequences cannot alias ("ab"+"c" != "a"+"bc").
#pragma once

#include <cstdint>
#include <string>

namespace phonolid::pipeline {

/// Bump when any artifact's on-disk layout changes; participates in every
/// key, so stale-format entries simply miss (and `phonolid pipeline gc`
/// removes them).  Mirrored by the CI artifact-cache key in
/// .github/workflows/ci.yml — bump both together.
// v2 ("plaf-v2"): batched la/ kernels changed numeric results of every
// model-producing stage.
inline constexpr std::uint32_t kPipelineFormatVersion = 2;

struct StageKey {
  std::string stage;       // e.g. "frontend", "supervectors", "vsm"
  std::uint64_t hash = 0;  // FNV-1a fingerprint

  [[nodiscard]] std::string hex() const;       // 16 lowercase hex digits
  [[nodiscard]] std::string filename() const;  // "<stage>-<hex>.art"

  friend bool operator==(const StageKey& a, const StageKey& b) noexcept {
    return a.hash == b.hash && a.stage == b.stage;
  }
};

/// Incremental FNV-1a fingerprint builder.  The constructor mixes the stage
/// name and kPipelineFormatVersion, so keys are stable across processes for
/// identical inputs and never collide across stages or format revisions.
class KeyHasher {
 public:
  explicit KeyHasher(std::string stage);

  KeyHasher& add_bytes(const void* data, std::size_t size);
  KeyHasher& add_u64(std::uint64_t v);
  KeyHasher& add_i64(std::int64_t v);
  KeyHasher& add_f64(double v);
  KeyHasher& add_bool(bool v);
  KeyHasher& add_string(const std::string& s);
  /// Chains an upstream stage's key into this one.
  KeyHasher& add_key(const StageKey& upstream);

  [[nodiscard]] StageKey finish() const;

 private:
  void mix(const void* data, std::size_t size);
  void tag(char t);

  std::string stage_;
  std::uint64_t hash_;
};

/// Raw FNV-1a over a byte range (used for artifact payload checksums).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t size,
                                  std::uint64_t seed = 14695981039346656037ull);

}  // namespace phonolid::pipeline
