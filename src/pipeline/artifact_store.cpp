#include "pipeline/artifact_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "util/serialize.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace phonolid::pipeline {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'P', 'L', 'A', 'F'};

struct CacheMetrics {
  obs::Counter& hits = obs::Metrics::counter("pipeline.cache.hits");
  obs::Counter& misses = obs::Metrics::counter("pipeline.cache.misses");
  obs::Counter& evictions = obs::Metrics::counter("pipeline.cache.evictions");
  obs::Counter& writes = obs::Metrics::counter("pipeline.cache.writes");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

/// Validates one entry stream against `key` and returns its payload.
/// Throws SerializeError on any mismatch.
std::string read_validated_payload(std::istream& in, const StageKey& key) {
  util::BinaryReader reader(in);
  reader.expect_magic(kMagic, kPipelineFormatVersion);
  const std::string stage = reader.read_string();
  const std::uint64_t hash = reader.read_u64();
  if (stage != key.stage || hash != key.hash) {
    throw util::SerializeError("artifact key mismatch (expected " +
                               key.filename() + ", file claims " + stage + ")");
  }
  std::string payload = reader.read_bytes();
  const std::uint64_t checksum = reader.read_u64();
  if (checksum != fnv1a(payload.data(), payload.size())) {
    throw util::SerializeError("artifact payload checksum mismatch");
  }
  return payload;
}

}  // namespace

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {
  if (!root_.empty()) {
    std::error_code ec;
    fs::create_directories(root_, ec);
    if (ec) {
      PHONOLID_WARN("pipeline") << "cannot create cache dir '" << root_
                                << "': " << ec.message()
                                << " — store disabled";
      root_.clear();
    }
  }
}

std::string ArtifactStore::resolve_root(const std::string& flag) {
  if (!flag.empty()) return flag;
  if (const char* env = std::getenv("PHONOLID_CACHE")) {
    if (*env != '\0') return env;
  }
  return {};
}

std::string ArtifactStore::path_for(const StageKey& key) const {
  return (fs::path(root_) / key.filename()).string();
}

void ArtifactStore::evict(const StageKey& key, const std::string& reason) {
  std::error_code ec;
  fs::remove(path_for(key), ec);
  cache_metrics().evictions.add();
  PHONOLID_WARN("pipeline") << "evicted artifact " << key.filename() << ": "
                            << reason;
}

bool ArtifactStore::load(const StageKey& key,
                         const std::function<void(std::istream&)>& read) {
  CacheMetrics& metrics = cache_metrics();
  if (!enabled()) {
    metrics.misses.add();
    return false;
  }
  obs::Span span("artifact_load");
  span.annotate("key", static_cast<std::int64_t>(key.hash));
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) {
    metrics.misses.add();
    return false;
  }
  try {
    std::string payload = read_validated_payload(in, key);
    std::istringstream payload_in(std::move(payload));
    read(payload_in);
  } catch (const util::SerializeError& e) {
    evict(key, e.what());
    metrics.misses.add();
    return false;
  }
  metrics.hits.add();
  return true;
}

void ArtifactStore::save(const StageKey& key,
                         const std::function<void(std::ostream&)>& write) {
  if (!enabled()) return;
  obs::Span span("artifact_save");
  span.annotate("key", static_cast<std::int64_t>(key.hash));

  std::ostringstream payload_out(std::ios::binary);
  write(payload_out);
  const std::string payload = payload_out.str();

  // Private temp file, then atomic rename: readers never observe a partial
  // entry, and concurrent writers of the same key cannot corrupt each other.
  const std::string final_path = path_for(key);
  std::ostringstream suffix;
  suffix << ".tmp." << std::this_thread::get_id();
  const std::string tmp_path = final_path + suffix.str();
  try {
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (!out) throw util::SerializeError("cannot open temp file");
      util::BinaryWriter writer(out);
      writer.write_magic(kMagic, kPipelineFormatVersion);
      writer.write_string(key.stage);
      writer.write_u64(key.hash);
      writer.write_bytes(payload);
      writer.write_u64(fnv1a(payload.data(), payload.size()));
      out.flush();
      if (!out) throw util::SerializeError("flush failed");
    }
    fs::rename(tmp_path, final_path);
    cache_metrics().writes.add();
  } catch (const std::exception& e) {
    // A failed save only costs a future recompute; never fail the pipeline.
    std::error_code ec;
    fs::remove(tmp_path, ec);
    PHONOLID_WARN("pipeline") << "failed to save artifact " << key.filename()
                              << ": " << e.what();
  }
}

ArtifactStore::Status ArtifactStore::status() const {
  Status st;
  if (!enabled()) return st;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".art") {
      continue;
    }
    ++st.entries;
    st.bytes += entry.file_size(ec);
  }
  return st;
}

ArtifactStore::GcResult ArtifactStore::gc(std::uintmax_t max_bytes) {
  GcResult result;
  if (!enabled()) return result;
  struct KeptEntry {
    fs::path path;
    std::uintmax_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<KeptEntry> kept;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    const auto size = entry.file_size(ec);
    // Orphaned temp files from crashed writers.
    if (path.string().find(".art.tmp.") != std::string::npos) {
      if (fs::remove(path, ec)) {
        ++result.removed;
        result.reclaimed_bytes += size;
      }
      continue;
    }
    if (path.extension() != ".art") continue;
    bool valid = false;
    {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        try {
          // Reconstruct the expected key from the entry's own claim; the
          // payload checksum still catches corruption.
          util::BinaryReader reader(in);
          reader.expect_magic(kMagic, kPipelineFormatVersion);
          StageKey claimed;
          claimed.stage = reader.read_string();
          claimed.hash = reader.read_u64();
          const std::string payload = reader.read_bytes();
          valid = reader.read_u64() == fnv1a(payload.data(), payload.size()) &&
                  path.filename().string() == claimed.filename();
        } catch (const util::SerializeError&) {
          valid = false;
        }
      }
    }
    if (valid) {
      ++result.kept;
      kept.push_back({path, size, fs::last_write_time(path, ec)});
    } else if (fs::remove(path, ec)) {
      ++result.removed;
      result.reclaimed_bytes += size;
      cache_metrics().evictions.add();
    }
  }
  if (max_bytes > 0) {
    std::uintmax_t total = 0;
    for (const auto& e : kept) total += e.size;
    std::sort(kept.begin(), kept.end(),
              [](const KeptEntry& a, const KeptEntry& b) {
                if (a.mtime != b.mtime) return a.mtime < b.mtime;
                return a.path.filename().string() < b.path.filename().string();
              });
    for (const auto& e : kept) {
      if (total <= max_bytes) break;
      if (!fs::remove(e.path, ec)) continue;
      total -= e.size;
      ++result.evicted;
      --result.kept;
      result.reclaimed_bytes += e.size;
      cache_metrics().evictions.add();
      PHONOLID_WARN("pipeline")
          << "gc evicted " << e.path.filename().string() << " ("
          << e.size << " bytes) for the " << max_bytes << "-byte budget";
    }
  }
  return result;
}

}  // namespace phonolid::pipeline
