#include "pipeline/stage_key.h"

#include <cmath>
#include <cstring>

namespace phonolid::pipeline {

namespace {
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::string StageKey::hex() const {
  static const char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  std::uint64_t h = hash;
  for (std::size_t i = 16; i-- > 0;) {
    out[i] = digits[h & 0xF];
    h >>= 4;
  }
  return out;
}

std::string StageKey::filename() const { return stage + "-" + hex() + ".art"; }

KeyHasher::KeyHasher(std::string stage)
    : stage_(std::move(stage)), hash_(kFnvOffset) {
  add_string(stage_);
  add_u64(kPipelineFormatVersion);
}

void KeyHasher::mix(const void* data, std::size_t size) {
  hash_ = fnv1a(data, size, hash_);
}

void KeyHasher::tag(char t) { mix(&t, 1); }

KeyHasher& KeyHasher::add_bytes(const void* data, std::size_t size) {
  tag('b');
  const auto n = static_cast<std::uint64_t>(size);
  mix(&n, sizeof n);
  mix(data, size);
  return *this;
}

KeyHasher& KeyHasher::add_u64(std::uint64_t v) {
  tag('u');
  mix(&v, sizeof v);
  return *this;
}

KeyHasher& KeyHasher::add_i64(std::int64_t v) {
  tag('i');
  mix(&v, sizeof v);
  return *this;
}

KeyHasher& KeyHasher::add_f64(double v) {
  // Canonicalise the two zero bit patterns so -0.0 and 0.0 (numerically
  // equal, so stage outputs are identical) produce the same key.
  if (v == 0.0) v = 0.0;
  tag('f');
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  mix(&bits, sizeof bits);
  return *this;
}

KeyHasher& KeyHasher::add_bool(bool v) {
  tag('B');
  const unsigned char b = v ? 1 : 0;
  mix(&b, 1);
  return *this;
}

KeyHasher& KeyHasher::add_string(const std::string& s) {
  tag('s');
  const auto n = static_cast<std::uint64_t>(s.size());
  mix(&n, sizeof n);
  mix(s.data(), s.size());
  return *this;
}

KeyHasher& KeyHasher::add_key(const StageKey& upstream) {
  tag('k');
  add_string(upstream.stage);
  add_u64(upstream.hash);
  return *this;
}

StageKey KeyHasher::finish() const { return StageKey{stage_, hash_}; }

}  // namespace phonolid::pipeline
