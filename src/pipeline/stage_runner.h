// Scheduler for independent pipeline stages.
//
// The experiment's stage graph is wide and shallow: the six front-ends'
// train -> decode -> vsm chains have no cross edges until the vote stage,
// so each chain is submitted to the existing thread pool as one job.  The
// calling thread *helps* drain the pool while waiting
// (ThreadPool::wait_helping), which makes the nesting safe: stage bodies
// freely call parallel_for over utterances without deadlocking even on a
// single-worker pool.
//
// Per-stage wall time is recorded under the "stage/<name>" trace span path;
// exceptions propagate to run_all() (first one wins, remaining stages still
// finish — disjoint outputs keep results deterministic).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace phonolid::pipeline {

class StageRunner {
 public:
  explicit StageRunner(util::ThreadPool& pool = util::ThreadPool::global())
      : pool_(pool) {}

  /// Register one independent stage; `fn` runs exactly once per run_all().
  void add(std::string name, std::function<void()> fn);

  [[nodiscard]] std::size_t size() const noexcept { return stages_.size(); }

  /// Run every registered stage, then clear the list.  Rethrows the first
  /// stage exception after all stages completed.
  void run_all();

 private:
  struct Stage {
    std::string name;
    std::function<void()> fn;
  };

  util::ThreadPool& pool_;
  std::vector<Stage> stages_;
};

}  // namespace phonolid::pipeline
