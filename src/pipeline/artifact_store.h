// Persistent, content-addressed artifact store.
//
// One file per stage product, named by its StageKey, under a cache root
// resolved from --cache-dir or $PHONOLID_CACHE (unset => the store is
// disabled and every lookup is a miss).  Entries are self-validating:
//
//   "PLAF" magic + kPipelineFormatVersion     (util::BinaryWriter layout)
//   stage name + key hash                     (echo check: wrong file => miss)
//   payload byte blob                         (the product's own serialize)
//   FNV-1a checksum of the payload            (bit flips => miss)
//
// Any validation failure *evicts* the entry (unlink + counter + warning)
// and reports a miss, so corrupt or stale caches degrade to recompute,
// never to a crash or a wrong result.  Writers serialize to a private temp
// file and atomically rename it into place, so concurrent producers of the
// same key are safe (last rename wins; both wrote identical bytes).
//
// Counters (obs::Metrics): pipeline.cache.hits / .misses / .evictions /
// .writes; loads and stores run under trace spans annotated with the key.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "pipeline/stage_key.h"

namespace phonolid::pipeline {

class ArtifactStore {
 public:
  /// Disabled store: every load misses, every save is a no-op.
  ArtifactStore() = default;
  /// Enabled store rooted at `root` (created if absent).
  explicit ArtifactStore(std::string root);

  /// Cache root resolution: explicit flag > $PHONOLID_CACHE > disabled.
  [[nodiscard]] static std::string resolve_root(const std::string& flag);

  [[nodiscard]] bool enabled() const noexcept { return !root_.empty(); }
  [[nodiscard]] const std::string& root() const noexcept { return root_; }

  /// True (hit) when a valid entry exists: `read` is invoked with a stream
  /// positioned at the start of the payload.  False on miss, corrupt entry
  /// (evicted first) or when `read` itself throws util::SerializeError (the
  /// envelope validated but the payload didn't parse — also evicted).
  bool load(const StageKey& key,
            const std::function<void(std::istream&)>& read);

  /// Serialize `write`'s output under `key` (atomic temp + rename).
  /// Disabled stores and IO failures are non-fatal: the pipeline's result
  /// never depends on whether a save worked.
  void save(const StageKey& key,
            const std::function<void(std::ostream&)>& write);

  /// load-else-compute-and-save in one call.
  template <typename T>
  T get_or_compute(const StageKey& key,
                   const std::function<T(std::istream&)>& load_fn,
                   const std::function<void(std::ostream&, const T&)>& save_fn,
                   const std::function<T()>& compute_fn) {
    T product{};
    bool hit = false;
    if (enabled()) {
      hit = load(key, [&](std::istream& in) { product = load_fn(in); });
    }
    if (!hit) {
      product = compute_fn();
      save(key, [&](std::ostream& out) { save_fn(out, product); });
    }
    return product;
  }

  struct Status {
    std::size_t entries = 0;
    std::uintmax_t bytes = 0;
  };
  /// Counts "*.art" entries under the root (0/0 when disabled).
  [[nodiscard]] Status status() const;

  struct GcResult {
    std::size_t removed = 0;
    std::uintmax_t reclaimed_bytes = 0;
    std::size_t kept = 0;
    /// Valid entries additionally dropped to fit the byte budget.
    std::size_t evicted = 0;
  };
  /// Removes corrupt and stale-format entries plus orphaned temp files;
  /// valid current-format artifacts are kept.  With `max_bytes > 0`, also
  /// evicts the oldest valid entries (by mtime, ties by filename) until the
  /// surviving entries fit the budget — recompute is always safe, so age is
  /// the only eviction policy needed.
  GcResult gc(std::uintmax_t max_bytes = 0);

  [[nodiscard]] std::string path_for(const StageKey& key) const;

 private:
  void evict(const StageKey& key, const std::string& reason);

  std::string root_;
};

}  // namespace phonolid::pipeline
