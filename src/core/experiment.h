// End-to-end experiment driver for the paper's evaluation.
//
// Owns the corpus, the six subsystems and their cached supervectors, the
// baseline VSMs, and the DBA re-training machinery.  Every table/figure
// bench is a thin loop over this class:
//   - baseline_scores()      -> PPRVSM columns of Tables 2-4
//   - votes() / select()     -> Table 1
//   - run_dba(V, mode)       -> DBA columns of Tables 2-3
//   - evaluate()/evaluate_fused() -> EER/Cavg/DET per duration tier
// Supervectors are computed exactly once (shared by the baseline and every
// DBA configuration), mirroring the paper's cost argument (§5.4).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/fusion.h"
#include "core/dba.h"
#include "core/frontend_spec.h"
#include "core/subsystem.h"
#include "eval/metrics.h"
#include "obs/json.h"
#include "obs/ledger.h"
#include "svm/vsm.h"

namespace phonolid::core {

struct ExperimentConfig {
  corpus::CorpusConfig corpus;
  std::vector<FrontEndSpec> frontends;
  svm::VsmTrainConfig vsm;
  backend::FusionConfig fusion;
  VoteCriterion vote_criterion = VoteCriterion::kStrict;
  /// Use lattice expected counts; false = 1-best ablation.
  bool use_lattice_counts = true;
  /// Streaming-chunk granularity (samples) for every subsystem's batch
  /// entry points (CLI --chunk-ms).  0 = whole utterance.  Bit-identical
  /// for any value, so it deliberately does NOT enter stage keys — warm
  /// artifacts stay valid across chunkings (that's the equivalence the
  /// tier1 streaming gate proves).
  std::size_t batch_chunk_samples = 0;
  std::uint64_t seed = 20090704;
  /// The scale this config was preset at (report metadata).
  util::Scale scale = util::Scale::kDefault;
  /// When non-empty, entry points (CLI/benches) write a structured JSON run
  /// report here after the experiment finishes (see Experiment::write_report
  /// and DESIGN.md "Observability").
  std::string report_path;
  /// Artifact-store root for the stage cache (--cache-dir).  Empty means
  /// "resolve from $PHONOLID_CACHE, else run uncached" (see
  /// pipeline::ArtifactStore::resolve_root and DESIGN.md "Pipeline &
  /// artifact store").
  std::string cache_dir;
  /// When non-empty, entry points write the decision ledger (JSONL, see
  /// obs/ledger.h) here after the experiment finishes (--ledger).  The
  /// in-memory ledger is always recorded; this only controls the file.
  std::string ledger_path;

  /// Paper-shaped configuration for the given scale.
  static ExperimentConfig preset(util::Scale scale, std::uint64_t seed);
};

/// Adoption statistics of one DBA re-training pass, recorded by
/// run_dba_selection in call order (a multi-iteration boosting loop produces
/// one entry per round).
struct DbaRoundStats {
  std::size_t round = 0;  // 1-based
  DbaMode mode = DbaMode::kM1;
  std::size_t min_votes = 0;        // 0 when the selection was hand-built
  std::size_t votes_cast = 0;       // total votes in the underlying VoteResult
  std::size_t utts_adopted = 0;     // |T_DBA|
  std::size_t trdba_size = 0;       // |Tr_DBA| fed to the VSM re-training
  /// Adopted utterances whose hypothesised label changed vs the previous
  /// round that adopted them (0 for the first round).
  std::size_t label_flips = 0;
  double selection_error = 0.0;     // vs ground truth (Table 1 column)
};

/// Scores of one subsystem on the dev and test sets (utterances x K).
struct SubsystemScores {
  util::Matrix dev;
  util::Matrix test;
};

/// EER / Cavg for one duration tier (fractions, not percent).
struct TierMetrics {
  double eer = 0.0;
  double cavg = 0.0;
};

struct EvalResult {
  TierMetrics tier[corpus::kNumTiers];
  /// Pooled-trial DET curve per tier (from calibrated LLR scores).
  std::vector<eval::DetPoint> det[corpus::kNumTiers];
};

class Experiment {
 public:
  /// Heavy on a cold cache: generates the corpus, trains every front-end,
  /// computes all supervectors, trains the baseline VSMs and scores
  /// dev+test.  With an artifact store configured (config.cache_dir /
  /// $PHONOLID_CACHE) each front-end's train / decode / VSM stage is pulled
  /// from the store when its key matches, so a warm run skips straight to
  /// scoring — bit-identical to the cold run by construction (the artifacts
  /// *are* the cold run's products).  The six front-end stage chains run
  /// concurrently on the thread pool (pipeline::StageRunner).
  static std::unique_ptr<Experiment> build(const ExperimentConfig& config);

  /// Artifact-store root this experiment resolved ("" = uncached run).
  [[nodiscard]] const std::string& cache_root() const noexcept {
    return cache_root_;
  }

  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const corpus::LreCorpus& corpus() const noexcept {
    return corpus_;
  }
  [[nodiscard]] std::size_t num_subsystems() const noexcept {
    return subsystems_.size();
  }
  [[nodiscard]] std::size_t num_languages() const noexcept {
    return corpus_.num_target_languages();
  }
  [[nodiscard]] const Subsystem& subsystem(std::size_t q) const {
    return *subsystems_.at(q);
  }

  [[nodiscard]] const std::vector<std::int32_t>& test_labels() const noexcept {
    return test_labels_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& dev_labels() const noexcept {
    return dev_labels_;
  }

  /// Baseline (PPRVSM) scores per subsystem.
  [[nodiscard]] const std::vector<SubsystemScores>& baseline_scores()
      const noexcept {
    return baseline_;
  }

  /// Votes of the baseline subsystems on the pooled test set (Eq. 10-13).
  [[nodiscard]] const VoteResult& votes() const noexcept { return votes_; }

  /// T_DBA selection for a threshold (paper: c_jk > V; realised as
  /// count >= min_votes — pass V directly, the column "V = n" of Tables
  /// 1-3 uses min_votes = n).
  [[nodiscard]] TrdbaSelection select(std::size_t min_votes) const {
    return select_trdba(votes_, min_votes);
  }

  /// Re-train every subsystem's VSM on Tr_DBA(V, mode) and re-score.
  /// `models_out` non-null appends the re-trained per-subsystem VSMs (the
  /// freeze path snapshots them into the bundle).
  [[nodiscard]] std::vector<SubsystemScores> run_dba(
      std::size_t min_votes, DbaMode mode,
      std::vector<svm::VsmModel>* models_out = nullptr) const;

  /// Vote counting over arbitrary score blocks (e.g. a previous DBA pass,
  /// enabling multi-iteration boosting) with a configurable criterion.
  [[nodiscard]] VoteResult votes_for(
      const std::vector<SubsystemScores>& blocks,
      VoteCriterion criterion = VoteCriterion::kStrict) const;

  /// Re-train from an explicit selection (the core of run_dba; exposed for
  /// iterated boosting and criterion ablations).  `votes` is the VoteResult
  /// the selection was made from, used to attribute per-subsystem vote bits
  /// and margins in the decision ledger; nullptr means the baseline votes()
  /// (correct for run_dba / select; pass the matching result for selections
  /// built from votes_for).
  [[nodiscard]] std::vector<SubsystemScores> run_dba_selection(
      const TrdbaSelection& selection, DbaMode mode,
      const VoteResult* votes = nullptr,
      std::vector<svm::VsmModel>* models_out = nullptr) const;

  /// Calibrate (LDA-MMI per tier, trained on dev) and evaluate an arbitrary
  /// set of subsystem score blocks.  `weights` empty = uniform (Eq. 15
  /// weights are produced by fusion_weights_from_counts on a selection's
  /// subsystem_fit_counts).
  [[nodiscard]] EvalResult evaluate(
      const std::vector<const SubsystemScores*>& blocks,
      std::vector<double> weights = {}) const;

  /// The fusion-fitting half of evaluate(): LDA-MMI trained on the blocks'
  /// dev scores.  Exposed so the freeze path can snapshot the exact fusion
  /// an evaluate() pass would use.
  [[nodiscard]] backend::ScoreFusion fit_fusion(
      const std::vector<const SubsystemScores*>& blocks,
      std::vector<double> weights = {}) const;

  /// The scoring half of evaluate(): per-tier metrics + DET from an already
  /// fitted fusion.  evaluate() == evaluate_with(fit_fusion(blocks, w),
  /// blocks).
  [[nodiscard]] EvalResult evaluate_with(
      const backend::ScoreFusion& fusion,
      const std::vector<const SubsystemScores*>& blocks) const;

  /// Single-subsystem convenience.
  [[nodiscard]] EvalResult evaluate_single(const SubsystemScores& block) const;

  /// Per-round DBA adoption statistics accumulated by run_dba_selection.
  [[nodiscard]] std::vector<DbaRoundStats> dba_rounds() const;

  /// The "dba" section of the run report ({"rounds": [...]}).
  [[nodiscard]] obs::Json dba_report() const;

  /// Snapshot of the decision ledger: baseline scores are recorded at
  /// build time, per-utterance round records by run_dba_selection, and
  /// fused LLRs by every evaluate() pass (last pass wins).
  [[nodiscard]] obs::DecisionLedger ledger() const;

  /// Serialize the ledger as deterministic JSONL (--ledger).
  void write_ledger(const std::string& path) const;

  /// Write the full structured JSON run report: obs metrics + trace spans +
  /// per-round DBA stats + experiment metadata, plus caller-provided extra
  /// sections (must be an object; merged at the top level).
  void write_report(const std::string& path, const std::string& command,
                    obs::Json extra = obs::Json::object()) const;

  /// Supervector caches (exposed for benches measuring VSM cost).
  [[nodiscard]] const std::vector<phonotactic::SparseVec>& train_svs(
      std::size_t q) const {
    return train_svs_.at(q);
  }
  [[nodiscard]] const std::vector<phonotactic::SparseVec>& test_svs(
      std::size_t q) const {
    return test_svs_.at(q);
  }
  [[nodiscard]] const std::vector<std::int32_t>& train_labels() const noexcept {
    return train_labels_;
  }
  [[nodiscard]] const svm::VsmModel& baseline_vsm(std::size_t q) const {
    return baseline_vsms_.at(q);
  }

 private:
  Experiment() = default;

  /// Seed the ledger header + per-utterance baseline entries (build time).
  void init_ledger();

  /// Records aggregate round stats and the per-utterance ledger rounds;
  /// returns the stats (with the 1-based round index) just recorded.
  DbaRoundStats record_dba_round(const TrdbaSelection& selection, DbaMode mode,
                                 std::size_t trdba_size,
                                 const VoteResult& votes) const;

  ExperimentConfig config_;
  std::string cache_root_;
  corpus::LreCorpus corpus_;
  std::vector<std::unique_ptr<Subsystem>> subsystems_;

  std::vector<std::vector<phonotactic::SparseVec>> train_svs_;
  std::vector<std::vector<phonotactic::SparseVec>> dev_svs_;
  std::vector<std::vector<phonotactic::SparseVec>> test_svs_;
  std::vector<std::int32_t> train_labels_;
  std::vector<std::int32_t> dev_labels_;
  std::vector<std::int32_t> test_labels_;

  std::vector<svm::VsmModel> baseline_vsms_;
  std::vector<SubsystemScores> baseline_;
  VoteResult votes_;

  // DBA round bookkeeping (mutated by const re-training entry points).
  mutable std::mutex dba_mutex_;
  mutable std::vector<DbaRoundStats> dba_rounds_;
  /// Adopted label per test utterance in the latest round, for flip counts.
  mutable std::unordered_map<std::uint32_t, std::int32_t> last_adopted_;
  /// Decision ledger (guarded by dba_mutex_ after build).
  mutable obs::DecisionLedger ledger_;
};

}  // namespace phonolid::core
