#include "core/frontend_spec.h"

#include "util/serialize.h"

namespace phonolid::core {

const char* to_string(ModelFamily family) noexcept {
  switch (family) {
    case ModelFamily::kAnnHmm: return "ANN-HMM";
    case ModelFamily::kDnnHmm: return "DNN-HMM";
    case ModelFamily::kGmmHmm: return "GMM-HMM";
  }
  return "?";
}

namespace {
constexpr char kSpecMagic[4] = {'P', 'F', 'E', 'S'};
constexpr std::uint32_t kSpecVersion = 1;
}  // namespace

void FrontEndSpec::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic(kSpecMagic, kSpecVersion);
  w.write_string(name);
  w.write_u32(static_cast<std::uint32_t>(family));
  w.write_u32(static_cast<std::uint32_t>(feature));
  w.write_u64(num_phones);
  w.write_u64(native_language);
  std::vector<std::uint32_t> hidden(hidden_sizes.begin(), hidden_sizes.end());
  w.write_u32_vec(hidden);
  w.write_u64(gmm_components);
  w.write_f32(nn_score_gain);
  w.write_u64(ngram_order);
  w.write_u32(use_lattice_counts ? 1 : 0);
  w.write_u32(use_tfllr ? 1 : 0);
  w.write_f64(decoder.lattice_beam);
  w.write_f64(decoder.phone_insertion_penalty);
  w.write_f64(decoder.acoustic_scale);
  w.write_f64(decoder.posterior_prune);
  w.write_u64(seed_salt);
}

FrontEndSpec FrontEndSpec::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic(kSpecMagic, kSpecVersion);
  FrontEndSpec spec;
  spec.name = r.read_string();
  const std::uint32_t family = r.read_u32();
  if (family > static_cast<std::uint32_t>(ModelFamily::kGmmHmm)) {
    throw util::SerializeError("FrontEndSpec: unknown model family");
  }
  spec.family = static_cast<ModelFamily>(family);
  spec.feature = static_cast<dsp::FeatureKind>(r.read_u32());
  spec.num_phones = r.read_u64();
  spec.native_language = r.read_u64();
  const auto hidden = r.read_u32_vec();
  spec.hidden_sizes.assign(hidden.begin(), hidden.end());
  spec.gmm_components = r.read_u64();
  spec.nn_score_gain = r.read_f32();
  spec.ngram_order = r.read_u64();
  spec.use_lattice_counts = r.read_u32() != 0;
  spec.use_tfllr = r.read_u32() != 0;
  spec.decoder.lattice_beam = r.read_f64();
  spec.decoder.phone_insertion_penalty = r.read_f64();
  spec.decoder.acoustic_scale = r.read_f64();
  spec.decoder.posterior_prune = r.read_f64();
  spec.seed_salt = r.read_u64();
  return spec;
}

std::vector<FrontEndSpec> default_frontends(util::Scale scale) {
  // Paper inventories: HU 59, RU 50, CZ 43, EN 47, MA 64 phones.  Scaled to
  // the synthetic universal inventory (30..48 phones) while preserving the
  // ordering HU > MA > RU > EN > CZ.
  const bool quick = (scale == util::Scale::kQuick);
  const std::size_t hu = quick ? 22 : 30;
  const std::size_t ru = quick ? 19 : 26;
  const std::size_t cz = quick ? 16 : 22;
  const std::size_t en = quick ? 17 : 24;
  const std::size_t ma = quick ? 24 : 33;
  const std::size_t hidden = quick ? 32 : 48;

  std::vector<FrontEndSpec> specs(6);

  specs[0].name = "ANN-HMM/HU";
  specs[0].family = ModelFamily::kAnnHmm;
  specs[0].feature = dsp::FeatureKind::kMfcc;
  specs[0].num_phones = hu;
  specs[0].native_language = 0;
  specs[0].hidden_sizes = {hidden};
  specs[0].decoder.lattice_beam = 3.0;
  specs[0].decoder.acoustic_scale = 1.0;
  specs[0].seed_salt = 0x51;

  specs[1].name = "ANN-HMM/RU";
  specs[1].family = ModelFamily::kAnnHmm;
  specs[1].feature = dsp::FeatureKind::kMfcc;
  specs[1].num_phones = ru;
  specs[1].native_language = 1;
  specs[1].hidden_sizes = {hidden};
  specs[1].decoder.lattice_beam = 3.0;
  specs[1].decoder.acoustic_scale = 1.0;
  specs[1].seed_salt = 0x52;

  specs[2].name = "ANN-HMM/CZ";
  specs[2].family = ModelFamily::kAnnHmm;
  specs[2].feature = dsp::FeatureKind::kMfcc;
  specs[2].num_phones = cz;
  specs[2].native_language = 2;
  specs[2].hidden_sizes = {hidden};
  specs[2].decoder.lattice_beam = 3.0;
  specs[2].decoder.acoustic_scale = 1.0;
  specs[2].seed_salt = 0x53;

  // Paper §4.1(b): DNN-HMM English on 13-dim PLP + deltas.
  specs[3].name = "DNN-HMM/EN";
  specs[3].family = ModelFamily::kDnnHmm;
  specs[3].feature = dsp::FeatureKind::kPlp;
  specs[3].num_phones = en;
  specs[3].native_language = 3;
  specs[3].hidden_sizes = {hidden, hidden};
  specs[3].decoder.lattice_beam = 3.0;
  specs[3].decoder.acoustic_scale = 1.0;
  specs[3].seed_salt = 0x54;

  // Paper §4.1(c): GMM-HMM Mandarin (12 PLP + deltas in the paper; MFCC
  // here to widen front-end diversity) and GMM-HMM English on PLP.
  specs[4].name = "GMM-HMM/MA";
  specs[4].family = ModelFamily::kGmmHmm;
  specs[4].feature = dsp::FeatureKind::kMfcc;
  specs[4].num_phones = ma;
  specs[4].native_language = 4;
  specs[4].gmm_components = quick ? 2 : 4;
  specs[4].seed_salt = 0x55;

  specs[5].name = "GMM-HMM/EN";
  specs[5].family = ModelFamily::kGmmHmm;
  specs[5].feature = dsp::FeatureKind::kPlp;
  specs[5].num_phones = en;
  specs[5].native_language = 5;
  specs[5].gmm_components = quick ? 2 : 4;
  specs[5].seed_salt = 0x56;

  return specs;
}

}  // namespace phonolid::core
