#include "core/frontend_spec.h"

namespace phonolid::core {

const char* to_string(ModelFamily family) noexcept {
  switch (family) {
    case ModelFamily::kAnnHmm: return "ANN-HMM";
    case ModelFamily::kDnnHmm: return "DNN-HMM";
    case ModelFamily::kGmmHmm: return "GMM-HMM";
  }
  return "?";
}

std::vector<FrontEndSpec> default_frontends(util::Scale scale) {
  // Paper inventories: HU 59, RU 50, CZ 43, EN 47, MA 64 phones.  Scaled to
  // the synthetic universal inventory (30..48 phones) while preserving the
  // ordering HU > MA > RU > EN > CZ.
  const bool quick = (scale == util::Scale::kQuick);
  const std::size_t hu = quick ? 22 : 30;
  const std::size_t ru = quick ? 19 : 26;
  const std::size_t cz = quick ? 16 : 22;
  const std::size_t en = quick ? 17 : 24;
  const std::size_t ma = quick ? 24 : 33;
  const std::size_t hidden = quick ? 32 : 48;

  std::vector<FrontEndSpec> specs(6);

  specs[0].name = "ANN-HMM/HU";
  specs[0].family = ModelFamily::kAnnHmm;
  specs[0].feature = dsp::FeatureKind::kMfcc;
  specs[0].num_phones = hu;
  specs[0].native_language = 0;
  specs[0].hidden_sizes = {hidden};
  specs[0].decoder.lattice_beam = 3.0;
  specs[0].decoder.acoustic_scale = 1.0;
  specs[0].seed_salt = 0x51;

  specs[1].name = "ANN-HMM/RU";
  specs[1].family = ModelFamily::kAnnHmm;
  specs[1].feature = dsp::FeatureKind::kMfcc;
  specs[1].num_phones = ru;
  specs[1].native_language = 1;
  specs[1].hidden_sizes = {hidden};
  specs[1].decoder.lattice_beam = 3.0;
  specs[1].decoder.acoustic_scale = 1.0;
  specs[1].seed_salt = 0x52;

  specs[2].name = "ANN-HMM/CZ";
  specs[2].family = ModelFamily::kAnnHmm;
  specs[2].feature = dsp::FeatureKind::kMfcc;
  specs[2].num_phones = cz;
  specs[2].native_language = 2;
  specs[2].hidden_sizes = {hidden};
  specs[2].decoder.lattice_beam = 3.0;
  specs[2].decoder.acoustic_scale = 1.0;
  specs[2].seed_salt = 0x53;

  // Paper §4.1(b): DNN-HMM English on 13-dim PLP + deltas.
  specs[3].name = "DNN-HMM/EN";
  specs[3].family = ModelFamily::kDnnHmm;
  specs[3].feature = dsp::FeatureKind::kPlp;
  specs[3].num_phones = en;
  specs[3].native_language = 3;
  specs[3].hidden_sizes = {hidden, hidden};
  specs[3].decoder.lattice_beam = 3.0;
  specs[3].decoder.acoustic_scale = 1.0;
  specs[3].seed_salt = 0x54;

  // Paper §4.1(c): GMM-HMM Mandarin (12 PLP + deltas in the paper; MFCC
  // here to widen front-end diversity) and GMM-HMM English on PLP.
  specs[4].name = "GMM-HMM/MA";
  specs[4].family = ModelFamily::kGmmHmm;
  specs[4].feature = dsp::FeatureKind::kMfcc;
  specs[4].num_phones = ma;
  specs[4].native_language = 4;
  specs[4].gmm_components = quick ? 2 : 4;
  specs[4].seed_salt = 0x55;

  specs[5].name = "GMM-HMM/EN";
  specs[5].family = ModelFamily::kGmmHmm;
  specs[5].feature = dsp::FeatureKind::kPlp;
  specs[5].num_phones = en;
  specs[5].native_language = 5;
  specs[5].gmm_components = quick ? 2 : 4;
  specs[5].seed_salt = 0x56;

  return specs;
}

}  // namespace phonolid::core
