// Per-utterance streaming sessions: chunked audio in, early LLR checkpoints
// out, batch-identical result at finalize().
//
// A StreamingSession owns every piece of per-utterance state — the
// incremental feature extractor (dsp::StreamingFeatures), checkpoint
// records, and stage-time accumulators — so any number of sessions can run
// concurrently against one const Subsystem from any mix of threads.
//
// Exactness contract: for ANY chunking of the same samples, finalize()
// produces bit-identical results (lattice, counts, supervector) to the
// batch Subsystem::process() path — in fact the batch path IS a
// single-chunk streaming session, so there is one code path to trust.
// Per-utterance CMVN is the one stage that needs whole-utterance
// statistics, so acoustic scoring and decoding are deferred to finalize()
// and run chunk-by-chunk there (AcousticModel::score_range +
// decoder::DecodeSession).
//
// Checkpoints: when `checkpoint_interval_s` is set, each push() that
// crosses an interval boundary computes the exact batch answer on the
// audio *prefix* seen so far — the first `frames` delta-resolved feature
// rows go through CMVN → chunked decode → N-gram counts → supervector →
// TFLLR → (optional) LLR scorer.  Prefix recomputation is what exactness
// costs under per-utterance CMVN; checkpoints are opt-in and their extra
// work is confined to the session.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "decoder/lattice.h"
#include "dsp/streaming_features.h"
#include "phonotactic/sparse.h"
#include "util/matrix.h"

namespace phonolid::core {

class Subsystem;

/// Maps one (TFLLR-scaled) supervector to per-language log-likelihood
/// ratios — typically a closure over the run's trained VSM.
using LlrScorer =
    std::function<std::vector<float>(const phonotactic::SparseVec&)>;

struct StreamingOptions {
  /// Acoustic-scoring/decode chunk granularity in samples (0 = whole
  /// utterance).  Any value yields bit-identical results; smaller chunks
  /// bound the per-advance latency at finalize().
  std::size_t chunk_samples = 0;
  /// Emit a checkpoint whenever this much audio has accumulated since the
  /// last one (0 = no checkpoints).
  double checkpoint_interval_s = 0.0;
  /// Optional per-checkpoint LLR scorer.  Checkpoints only run the decode →
  /// counts → supervector chain when a scorer is present; without one they
  /// just record cadence (audio_s / frames).
  LlrScorer scorer;
  /// Apply the subsystem's TFLLR scaling to supervectors (requires a fitted
  /// scaler when the spec enables TFLLR).  false is for callers that only
  /// want lattices/raw counts (CLI decode) and for the TFLLR fit pass
  /// itself.
  bool apply_tfllr = true;
};

/// One early decision point: the exact batch answer on the audio prefix.
struct StreamingCheckpoint {
  static constexpr std::size_t kNoLanguage = static_cast<std::size_t>(-1);

  double audio_s = 0.0;    ///< audio seen when the checkpoint fired
  std::size_t frames = 0;  ///< delta-resolved feature rows covered
  std::vector<float> llr;  ///< per-language LLRs (empty without a scorer)
  std::size_t best_language = kNoLanguage;  ///< argmax of llr
};

struct StreamingResult {
  decoder::Lattice lattice;
  /// Raw (pre-normalisation) N-gram counts — the mergeable partial form.
  phonotactic::SparseVec counts;
  /// Normalised supervector (TFLLR-scaled when the spec enables it).
  phonotactic::SparseVec supervector;
  std::size_t frames = 0;
  double audio_s = 0.0;
  std::vector<StreamingCheckpoint> checkpoints;
};

class StreamingSession {
 public:
  /// Feed the next chunk of raw audio samples; may fire checkpoints.
  /// Throws std::logic_error after finalize().
  void push(std::span<const float> samples);

  /// Flush the front end, run the deferred CMVN + chunked decode + count
  /// chain and return the batch-identical result (plus the checkpoints
  /// collected along the way).  Throws std::logic_error if called twice.
  [[nodiscard]] StreamingResult finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] double audio_seconds() const noexcept;
  /// Delta-resolved feature rows available so far.
  [[nodiscard]] std::size_t frames_ready() const noexcept {
    return features_.num_rows();
  }
  [[nodiscard]] const std::vector<StreamingCheckpoint>& checkpoints()
      const noexcept {
    return checkpoints_;
  }

 private:
  friend class Subsystem;
  StreamingSession(const Subsystem& subsystem, StreamingOptions options);

  void charge_new_rows();
  void maybe_checkpoint();
  /// CMVN (on a copy for checkpoints, in place at finalize) + chunked
  /// score/decode of `feats`.
  [[nodiscard]] decoder::Lattice decode_chunked(const util::Matrix& feats) const;
  /// counts -> normalised supervector -> TFLLR, shared by checkpoints and
  /// finalize().
  [[nodiscard]] phonotactic::SparseVec supervector_of(
      const phonotactic::SparseVec& counts) const;

  const Subsystem* subsystem_;
  StreamingOptions options_;
  dsp::StreamingFeatures features_;
  std::vector<StreamingCheckpoint> checkpoints_;
  double next_checkpoint_s_ = 0.0;
  std::size_t charged_rows_ = 0;  // feature rows already energy-charged
  double feature_s_ = 0.0;        // accumulated front-end wall-clock
  bool finalized_ = false;
};

}  // namespace phonolid::core
