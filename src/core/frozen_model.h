// Frozen model bundles: the train/infer split.
//
// Training (Experiment) owns the corpus and the stage graph; inference only
// needs the end products — per-front-end acoustic models + phone maps, the
// TFLLR backgrounds, the (DBA-re-trained) VSM heads and the fitted LDA-MMI
// fusion.  A FrozenModel packages exactly those, serialized as one
// self-contained, versioned, checksummed bundle directory:
//
//   bundle/
//     MANIFEST.json           bundle format + stage key + model metadata
//     bundle-<hex>.art        ArtifactStore envelope (magic, echo check,
//                             FNV-1a checksum) around the "PFZM" payload
//
// `phonolid freeze` writes one from a trained experiment; `phonolid serve`
// (src/serve/) loads one and scores PCM with no Experiment or corpus in
// sight.  score_batch() reproduces the offline evaluate() chain bit for bit:
// per-utterance streaming supervectors (batch == one-chunk session), per-head
// VSM scores, Matrix-overload fusion apply, per-row LLR calibration — every
// step is row-independent, so any batching of requests yields the same bytes
// as `phonolid run` (the tier1 serve gate cmp's them).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "backend/fusion.h"
#include "core/subsystem.h"
#include "util/matrix.h"

namespace phonolid::core {

class Experiment;

/// Bump when the bundle payload or manifest layout changes; old bundles then
/// fail loudly at load instead of parsing garbage.
inline constexpr std::uint32_t kBundleFormatVersion = 1;

/// One VSM scoring head: a language classifier over the supervectors of one
/// subsystem.  A both-mode DBA freeze carries 2Q heads (M1 + M2) over Q
/// subsystems, mirroring the fused block list of the offline evaluate().
struct FrozenHead {
  std::uint32_t subsystem = 0;
  svm::VsmModel vsm;
};

/// Result of scoring one micro-batch of utterances.
struct BatchScore {
  util::Matrix llr;                 // utterances x K calibrated LLRs
  std::vector<std::uint32_t> best;  // argmax language per utterance
};

class FrozenModel {
 public:
  FrozenModel(std::string scale, std::uint64_t seed, double sample_rate,
              std::vector<std::string> languages,
              std::vector<std::unique_ptr<Subsystem>> subsystems,
              std::vector<FrozenHead> heads, backend::ScoreFusion fusion);

  FrozenModel(const FrozenModel&) = delete;
  FrozenModel& operator=(const FrozenModel&) = delete;
  FrozenModel(FrozenModel&&) = default;
  FrozenModel& operator=(FrozenModel&&) = default;

  /// Load a bundle directory; throws std::runtime_error /
  /// util::SerializeError on a missing, corrupt or wrong-version bundle.
  static FrozenModel load_bundle(const std::string& dir);

  /// Write this model as a bundle directory (created if absent).
  void save_bundle(const std::string& dir) const;

  /// `phonolid freeze`: snapshot a trained experiment's front ends plus the
  /// given scoring heads and fitted fusion into a bundle directory.
  static void write_bundle(const std::string& dir, const Experiment& exp,
                           const std::vector<FrozenHead>& heads,
                           const backend::ScoreFusion& fusion);

  /// Score a micro-batch of PCM utterances (at sample_rate()).  Each output
  /// row depends only on its own utterance, so results are bit-identical for
  /// any batching of the same utterances and any thread count.
  [[nodiscard]] BatchScore score_batch(
      const std::vector<std::span<const float>>& utterances) const;

  [[nodiscard]] const std::string& scale() const noexcept { return scale_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] double sample_rate() const noexcept { return sample_rate_; }
  [[nodiscard]] const std::vector<std::string>& languages() const noexcept {
    return languages_;
  }
  [[nodiscard]] std::size_t num_languages() const noexcept {
    return languages_.size();
  }
  [[nodiscard]] std::size_t num_subsystems() const noexcept {
    return subsystems_.size();
  }
  [[nodiscard]] std::size_t num_heads() const noexcept { return heads_.size(); }
  [[nodiscard]] const Subsystem& subsystem(std::size_t s) const {
    return *subsystems_.at(s);
  }

 private:
  std::string scale_;
  std::uint64_t seed_ = 0;
  double sample_rate_ = 0.0;
  std::vector<std::string> languages_;
  std::vector<std::unique_ptr<Subsystem>> subsystems_;
  std::vector<FrozenHead> heads_;
  backend::ScoreFusion fusion_;
};

}  // namespace phonolid::core
