#include "core/experiment.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/stage_cache.h"
#include "eval/diagnostics.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "pipeline/artifact_store.h"
#include "pipeline/stage_runner.h"
#include "util/logging.h"
#include "util/options.h"
#include "util/thread_pool.h"

namespace phonolid::core {

ExperimentConfig ExperimentConfig::preset(util::Scale scale,
                                          std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.scale = scale;
  cfg.corpus = corpus::CorpusConfig::preset(scale, seed);
  cfg.frontends = default_frontends(scale);
  cfg.vsm.svm.C = 1.0;
  cfg.vsm.svm.max_epochs = 60;
  cfg.vsm.svm.epsilon = 0.05;
  cfg.vsm.seed = seed;
  return cfg;
}

std::unique_ptr<Experiment> Experiment::build(const ExperimentConfig& config) {
  PHONOLID_SPAN("experiment_build");
  auto exp = std::unique_ptr<Experiment>(new Experiment());
  exp->config_ = config;
  pipeline::ArtifactStore store(
      pipeline::ArtifactStore::resolve_root(config.cache_dir));
  exp->cache_root_ = store.root();
  if (store.enabled()) {
    PHONOLID_INFO("core") << "artifact store at " << store.root();
  }
  {
    PHONOLID_SPAN("corpus");
    exp->corpus_ = corpus::LreCorpus::build(config.corpus);
  }
  const corpus::LreCorpus& corpus = exp->corpus_;
  const std::size_t k = corpus.num_target_languages();

  exp->train_labels_.reserve(corpus.vsm_train().size());
  for (const auto& u : corpus.vsm_train()) exp->train_labels_.push_back(u.language);
  exp->dev_labels_.reserve(corpus.dev().size());
  for (const auto& u : corpus.dev()) exp->dev_labels_.push_back(u.language);
  exp->test_labels_.reserve(corpus.test().size());
  for (const auto& u : corpus.test()) exp->test_labels_.push_back(u.language);

  const std::size_t q = config.frontends.size();
  exp->subsystems_.resize(q);
  exp->train_svs_.resize(q);
  exp->dev_svs_.resize(q);
  exp->test_svs_.resize(q);
  exp->baseline_vsms_.resize(q);
  exp->baseline_.resize(q);

  // The six per-front-end chains (train -> decode -> vsm) share no state —
  // each writes only slot s and all randomness derives from (seed, salt) —
  // so they run as independent stages.  Every stage product is pulled from
  // the artifact store when its key matches (see core/stage_cache.h for the
  // invalidation chain).
  const pipeline::StageKey corpus_key =
      corpus_stage_key(config.corpus, config.scale, config.seed);
  pipeline::StageRunner runner;
  for (std::size_t s = 0; s < q; ++s) {
    runner.add("subsystem/" + config.frontends[s].name, [&, s] {
      FrontEndSpec spec = config.frontends[s];
      // The 1-best ablation flows through the supervector builder config.
      spec.use_lattice_counts = config.use_lattice_counts;

      const pipeline::StageKey fe_key =
          frontend_stage_key(corpus_key, spec, config.seed);
      TrainedFrontEnd fe = store.get_or_compute<TrainedFrontEnd>(
          fe_key,
          [](std::istream& in) { return TrainedFrontEnd::deserialize(in); },
          [](std::ostream& out, const TrainedFrontEnd& v) { v.serialize(out); },
          [&] { return Subsystem::train_front_end(corpus, spec, config.seed); });
      auto sub = Subsystem::assemble(corpus, spec, std::move(fe));
      sub->set_batch_chunk_samples(config.batch_chunk_samples);

      const pipeline::StageKey sv_key = supervectors_stage_key(fe_key);
      DecodedSupervectors ds = store.get_or_compute<DecodedSupervectors>(
          sv_key,
          [](std::istream& in) { return DecodedSupervectors::deserialize(in); },
          [](std::ostream& out, const DecodedSupervectors& v) {
            v.serialize(out);
          },
          [&] { return sub->decode_splits(corpus); });
      sub->set_tfllr(ds.tfllr);

      // Baseline VSM (paper step (b)) and score matrices (Eq. 8-9).
      svm::VsmTrainConfig vsm_cfg = config.vsm;
      vsm_cfg.seed = util::derive_stream(config.seed, 0xF000 + s);
      const pipeline::StageKey vsm_key =
          vsm_stage_key(sv_key, vsm_cfg, vsm_cfg.seed, k);
      svm::VsmModel vsm = store.get_or_compute<svm::VsmModel>(
          vsm_key,
          [](std::istream& in) { return svm::VsmModel::deserialize(in); },
          [](std::ostream& out, const svm::VsmModel& v) { v.serialize(out); },
          [&] {
            return svm::VsmModel::train(ds.train, exp->train_labels_, k,
                                        sub->supervector_dim(), vsm_cfg);
          });

      exp->baseline_[s].dev = vsm.score_all(ds.dev);
      exp->baseline_[s].test = vsm.score_all(ds.test);
      exp->train_svs_[s] = std::move(ds.train);
      exp->dev_svs_[s] = std::move(ds.dev);
      exp->test_svs_[s] = std::move(ds.test);
      exp->baseline_vsms_[s] = std::move(vsm);
      exp->subsystems_[s] = std::move(sub);
      PHONOLID_INFO("core") << "baseline VSM ready for " << spec.name;
    });
  }
  runner.run_all();

  // Votes over the pooled test set (Eq. 10-13).
  std::vector<const util::Matrix*> test_scores;
  test_scores.reserve(q);
  for (const auto& b : exp->baseline_) test_scores.push_back(&b.test);
  exp->votes_ = compute_votes(test_scores, config.vote_criterion);
  exp->init_ledger();
  return exp;
}

void Experiment::init_ledger() {
  ledger_.num_classes = static_cast<std::uint32_t>(num_languages());
  ledger_.num_subsystems = static_cast<std::uint32_t>(subsystems_.size());
  ledger_.languages.clear();
  for (const corpus::LanguageSpec& spec : corpus_.target_languages()) {
    ledger_.languages.push_back(spec.name());
  }
  ledger_.scale = util::to_string(config_.scale);
  ledger_.seed = config_.seed;
  ledger_.entries.assign(corpus_.test().size(), obs::LedgerEntry{});
  const std::size_t k = num_languages();
  for (std::size_t j = 0; j < ledger_.entries.size(); ++j) {
    obs::LedgerEntry& e = ledger_.entries[j];
    const corpus::Utterance& u = corpus_.test()[j];
    e.utt = j;
    e.corpus_id = u.id;
    e.true_label = u.language;
    e.tier = corpus::to_string(u.tier);
    e.scores.resize(baseline_.size());
    for (std::size_t q = 0; q < baseline_.size(); ++q) {
      auto row = baseline_[q].test.row(j);
      e.scores[q].assign(k, 0.0);
      for (std::size_t c = 0; c < k; ++c) e.scores[q][c] = row[c];
    }
  }
}

std::vector<SubsystemScores> Experiment::run_dba(
    std::size_t min_votes, DbaMode mode,
    std::vector<svm::VsmModel>* models_out) const {
  return run_dba_selection(select_trdba(votes_, min_votes), mode,
                           /*votes=*/nullptr, models_out);
}

VoteResult Experiment::votes_for(const std::vector<SubsystemScores>& blocks,
                                 VoteCriterion criterion) const {
  std::vector<const util::Matrix*> test_scores;
  test_scores.reserve(blocks.size());
  for (const auto& b : blocks) test_scores.push_back(&b.test);
  return compute_votes(test_scores, criterion);
}

std::vector<SubsystemScores> Experiment::run_dba_selection(
    const TrdbaSelection& selection, DbaMode mode, const VoteResult* votes,
    std::vector<svm::VsmModel>* models_out) const {
  obs::Span span("dba_round");
  const std::size_t k = num_languages();
  std::vector<SubsystemScores> out(subsystems_.size());
  const std::size_t trdba_size =
      selection.utt_index.size() +
      (mode == DbaMode::kM2 ? train_labels_.size() : 0);
  const DbaRoundStats stats = record_dba_round(
      selection, mode, trdba_size, votes != nullptr ? *votes : votes_);
  span.annotate("round", static_cast<std::int64_t>(stats.round));
  span.annotate("trdba", static_cast<std::int64_t>(trdba_size));
  span.annotate("adopted", static_cast<std::int64_t>(stats.utts_adopted));
  span.annotate("flips", static_cast<std::int64_t>(stats.label_flips));
  if (selection.utt_index.empty() && mode == DbaMode::kM1) {
    // Nothing adopted: fall back to the baseline models' scores (an empty
    // SVM training set is undefined), mirroring a no-op boosting pass.
    if (models_out != nullptr) {
      models_out->insert(models_out->end(), baseline_vsms_.begin(),
                         baseline_vsms_.end());
    }
    return baseline_;
  }
  for (std::size_t q = 0; q < subsystems_.size(); ++q) {
    std::vector<const phonotactic::SparseVec*> x;
    std::vector<std::int32_t> y;
    compose_trdba(mode, selection, test_svs_[q], train_svs_[q], train_labels_,
                  x, y);
    svm::VsmTrainConfig cfg = config_.vsm;
    cfg.seed = util::derive_stream(
        config_.seed, 0xF100 + q * 16 + selection.utt_index.size() +
                          (mode == DbaMode::kM2 ? 0x1000u : 0u));
    svm::VsmModel model = svm::VsmModel::train(
        x, y, k, subsystems_[q]->supervector_dim(), cfg);
    out[q].dev = model.score_all(dev_svs_[q]);
    out[q].test = model.score_all(test_svs_[q]);
    if (models_out != nullptr) models_out->push_back(std::move(model));
  }
  return out;
}

EvalResult Experiment::evaluate(
    const std::vector<const SubsystemScores*>& blocks,
    std::vector<double> weights) const {
  return evaluate_with(fit_fusion(blocks, std::move(weights)), blocks);
}

backend::ScoreFusion Experiment::fit_fusion(
    const std::vector<const SubsystemScores*>& blocks,
    std::vector<double> weights) const {
  if (blocks.empty()) throw std::invalid_argument("evaluate: no score blocks");
  // LDA-MMI calibration trained on the pooled dev set (paper step g); the
  // pooled fit is markedly more stable than per-tier fits at small scales.
  std::vector<util::Matrix> dev_blocks(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    dev_blocks[b] = blocks[b]->dev;
  }
  backend::ScoreFusion fusion;
  fusion.fit(dev_blocks, dev_labels_, num_languages(), std::move(weights),
             config_.fusion);
  return fusion;
}

EvalResult Experiment::evaluate_with(
    const backend::ScoreFusion& fusion,
    const std::vector<const SubsystemScores*>& blocks) const {
  if (blocks.empty()) throw std::invalid_argument("evaluate: no score blocks");
  const std::size_t k = num_languages();
  EvalResult result;

  for (std::size_t tier = 0; tier < corpus::kNumTiers; ++tier) {
    const auto dt = static_cast<corpus::DurationTier>(tier);
    const std::vector<std::size_t> test_idx = corpus_.test_indices(dt);
    if (test_idx.empty()) continue;

    std::vector<util::Matrix> test_blocks(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      test_blocks[b].resize(test_idx.size(), k);
      for (std::size_t i = 0; i < test_idx.size(); ++i) {
        auto src = blocks[b]->test.row(test_idx[i]);
        std::copy(src.begin(), src.end(), test_blocks[b].row(i).begin());
      }
    }
    std::vector<std::int32_t> test_y(test_idx.size());
    for (std::size_t i = 0; i < test_idx.size(); ++i) {
      test_y[i] = test_labels_[test_idx[i]];
    }

    const util::Matrix log_post = fusion.apply(test_blocks);
    const util::Matrix llr = eval::log_posteriors_to_llr(log_post);

    const eval::TrialSet trials = eval::TrialSet::from_scores(llr, test_y);
    result.tier[tier].eer = eval::equal_error_rate(trials);
    result.tier[tier].cavg = eval::cavg(llr, test_y, k);
    result.det[tier] = eval::det_curve(trials);

    // Record the fused + calibrated LLRs in the decision ledger; each
    // evaluate() pass overwrites, so the ledger carries the last
    // evaluation's scores (deterministic given the caller's call order).
    std::lock_guard lock(dba_mutex_);
    if (ledger_.entries.size() == test_labels_.size()) {
      for (std::size_t i = 0; i < test_idx.size(); ++i) {
        auto row = llr.row(i);
        std::vector<double>& fused = ledger_.entries[test_idx[i]].fused_llr;
        fused.assign(k, 0.0);
        for (std::size_t c = 0; c < k; ++c) fused[c] = row[c];
      }
    }
  }
  return result;
}

EvalResult Experiment::evaluate_single(const SubsystemScores& block) const {
  return evaluate({&block});
}

DbaRoundStats Experiment::record_dba_round(const TrdbaSelection& selection,
                                           DbaMode mode,
                                           std::size_t trdba_size,
                                           const VoteResult& votes) const {
  DbaRoundStats stats;
  stats.mode = mode;
  stats.min_votes = selection.min_votes;
  stats.votes_cast = selection.votes_cast;
  stats.utts_adopted = selection.utt_index.size();
  stats.trdba_size = trdba_size;
  stats.selection_error = selection_error_rate(selection, test_labels_);

  std::lock_guard lock(dba_mutex_);
  stats.round = dba_rounds_.size() + 1;
  for (std::size_t i = 0; i < selection.utt_index.size(); ++i) {
    const auto it = last_adopted_.find(selection.utt_index[i]);
    if (it != last_adopted_.end() && it->second != selection.label[i]) {
      ++stats.label_flips;
    }
  }

  // Per-utterance ledger rounds.  Vote bits/margins are only attributable
  // when the VoteResult covers the pooled test set with matching shape
  // (hand-built selections over subsets skip the per-utterance record).
  std::unordered_map<std::uint32_t, std::int32_t> hyp;
  hyp.reserve(selection.utt_index.size());
  for (std::size_t i = 0; i < selection.utt_index.size(); ++i) {
    hyp.emplace(selection.utt_index[i], selection.label[i]);
  }
  if (votes.num_utts == ledger_.entries.size() &&
      votes.num_classes == ledger_.num_classes) {
    for (std::size_t j = 0; j < votes.num_utts; ++j) {
      obs::LedgerRound r;
      r.round = static_cast<std::uint32_t>(stats.round);
      r.mode = to_string(mode);
      r.min_votes = static_cast<std::uint32_t>(selection.min_votes);
      std::int32_t best = -1;
      std::uint32_t best_count = 0;
      bool tie = false;
      for (std::size_t c = 0; c < votes.num_classes; ++c) {
        const std::uint32_t cnt = votes.count(j, c);
        if (cnt > best_count) {
          best = static_cast<std::int32_t>(c);
          best_count = cnt;
          tie = false;
        } else if (cnt == best_count && cnt > 0) {
          tie = true;
        }
      }
      r.best_class = best;
      r.vote_count = best_count;
      r.tie = tie;
      if (best >= 0) {
        const auto b = static_cast<std::size_t>(best);
        r.votes.resize(votes.num_subsystems);
        r.margins.resize(votes.num_subsystems);
        for (std::size_t q = 0; q < votes.num_subsystems; ++q) {
          r.votes[q] = votes.vote(q, j, b) ? 1 : 0;
          r.margins[q] = votes.margin(q, j, b);
        }
      }
      const auto it = hyp.find(static_cast<std::uint32_t>(j));
      if (it != hyp.end()) {
        r.adopted = true;
        r.hyp_label = it->second;
        r.correct = it->second == test_labels_[j];
        const auto prev = last_adopted_.find(it->first);
        r.flip = prev != last_adopted_.end() && prev->second != it->second;
      }
      ledger_.entries[j].rounds.push_back(std::move(r));
    }
  }

  last_adopted_.clear();
  for (std::size_t i = 0; i < selection.utt_index.size(); ++i) {
    last_adopted_.emplace(selection.utt_index[i], selection.label[i]);
  }
  dba_rounds_.push_back(stats);
  PHONOLID_EVENT("dba_round_recorded", "round",
                 static_cast<std::int64_t>(stats.round), "adopted",
                 static_cast<std::int64_t>(stats.utts_adopted));
  return stats;
}

std::vector<DbaRoundStats> Experiment::dba_rounds() const {
  std::lock_guard lock(dba_mutex_);
  return dba_rounds_;
}

obs::DecisionLedger Experiment::ledger() const {
  std::lock_guard lock(dba_mutex_);
  return ledger_;
}

void Experiment::write_ledger(const std::string& path) const {
  ledger().write_jsonl_file(path);
  PHONOLID_INFO("core") << "wrote decision ledger to " << path;
}

obs::Json Experiment::dba_report() const {
  obs::Json rounds = obs::Json::array();
  for (const DbaRoundStats& r : dba_rounds()) {
    obs::Json entry = obs::Json::object();
    entry["round"] = obs::Json(r.round);
    entry["mode"] = obs::Json(to_string(r.mode));
    entry["min_votes"] = obs::Json(r.min_votes);
    entry["votes_cast"] = obs::Json(r.votes_cast);
    entry["utts_adopted"] = obs::Json(r.utts_adopted);
    entry["trdba_size"] = obs::Json(r.trdba_size);
    entry["label_flips"] = obs::Json(r.label_flips);
    entry["selection_error"] = obs::Json(r.selection_error);
    rounds.push_back(std::move(entry));
  }
  obs::Json dba = obs::Json::object();
  dba["rounds"] = std::move(rounds);
  return dba;
}

void Experiment::write_report(const std::string& path,
                              const std::string& command,
                              obs::Json extra) const {
  obs::ReportMeta meta;
  meta.tool = "phonolid";
  meta.command = command;
  meta.scale = util::to_string(config_.scale);
  meta.seed = config_.seed;
  meta.threads = util::ThreadPool::global().num_threads();

  obs::Json experiment = obs::Json::object();
  experiment["num_subsystems"] = obs::Json(num_subsystems());
  experiment["num_languages"] = obs::Json(num_languages());
  experiment["train_utterances"] = obs::Json(train_labels_.size());
  experiment["dev_utterances"] = obs::Json(dev_labels_.size());
  experiment["test_utterances"] = obs::Json(test_labels_.size());
  experiment["use_lattice_counts"] = obs::Json(config_.use_lattice_counts);

  obs::Json cache = obs::Json::object();
  cache["enabled"] = obs::Json(!cache_root_.empty());
  cache["dir"] = obs::Json(cache_root_);
  cache["hits"] = obs::Json(obs::Metrics::counter("pipeline.cache.hits").value());
  cache["misses"] =
      obs::Json(obs::Metrics::counter("pipeline.cache.misses").value());
  cache["evictions"] =
      obs::Json(obs::Metrics::counter("pipeline.cache.evictions").value());
  cache["writes"] =
      obs::Json(obs::Metrics::counter("pipeline.cache.writes").value());

  obs::Json merged = obs::Json::object();
  merged["experiment"] = std::move(experiment);
  merged["dba"] = dba_report();
  merged["cache"] = std::move(cache);
  // The "quality" section + float gauges (-> metrics.values / Prometheus)
  // are derived from the decision ledger, so every report that went through
  // an Experiment can be gated on calibration and adoption quality.
  if (const obs::DecisionLedger led = ledger(); !led.empty()) {
    const eval::DiagnosticsResult diag = eval::compute_diagnostics(led);
    eval::publish_quality_gauges(diag);
    merged["quality"] = eval::diagnostics_json(diag);
  }
  for (auto& [key, value] : extra.as_object()) {
    merged[key] = std::move(value);
  }
  obs::Json report = obs::build_report(meta, std::move(merged));
  // build_report cannot know the utterance count; normalize the energy
  // total by this experiment's test-set size so runs at different scales
  // compare on a per-utterance basis.
  if (obs::Json* energy = const_cast<obs::Json*>(report.find("energy"));
      energy != nullptr && !test_labels_.empty()) {
    if (const obs::Json* total = energy->find("total_joules");
        total != nullptr && total->is_number()) {
      const double per_utt =
          total->as_double() / static_cast<double>(test_labels_.size());
      (*energy)["joules_per_test_utterance"] =
          obs::Json(std::round(per_utt * 1e6) / 1e6);
    }
  }
  obs::write_report_file(path, report);
  PHONOLID_INFO("core") << "wrote run report to " << path;
}

}  // namespace phonolid::core
