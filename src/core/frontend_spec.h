// Front-end specifications.
//
// The paper's diversified front-end battery (§4.1):
//   (a) three ANN-HMM phone recognizers with language-specific phone sets
//       (BUT Hungarian / Czech / Russian TRAPs decoders),
//   (b) one DNN-HMM English recognizer on PLP features (Tsinghua),
//   (c) two GMM-HMM recognizers, English and Mandarin (Tsinghua).
// Each spec fixes the model family, the acoustic feature kind, the phone
// set size (scaled from the paper's 43..64) and its native training
// language — everything the Subsystem builder needs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "decoder/phone_loop_decoder.h"
#include "dsp/features.h"
#include "util/options.h"

namespace phonolid::core {

enum class ModelFamily : std::uint8_t { kAnnHmm, kDnnHmm, kGmmHmm };

const char* to_string(ModelFamily family) noexcept;

struct FrontEndSpec {
  std::string name;                         // e.g. "ANN-HMM/HU"
  ModelFamily family = ModelFamily::kGmmHmm;
  dsp::FeatureKind feature = dsp::FeatureKind::kMfcc;
  std::size_t num_phones = 24;              // front-end phone set size
  std::size_t native_language = 0;          // index into corpus natives
  std::vector<std::size_t> hidden_sizes = {64};  // ANN/DNN layer widths
  std::size_t gmm_components = 4;           // GMM-HMM mixture size
  float nn_score_gain = 1.0f;               // hybrid acoustic gain (ANN/DNN)
  std::size_t ngram_order = 3;              // supervector N-gram order
  bool use_lattice_counts = true;           // false = 1-best ablation
  bool use_tfllr = true;                    // false = raw probabilities
  decoder::DecoderConfig decoder;
  std::uint64_t seed_salt = 0;

  /// Bundle serialization ("PFES" v1): everything the corpus-free
  /// Subsystem::assemble needs to reconstruct the front end.
  void serialize(std::ostream& out) const;
  static FrontEndSpec deserialize(std::istream& in);
};

/// The paper's six front-ends, sized for the given scale.
std::vector<FrontEndSpec> default_frontends(util::Scale scale);

}  // namespace phonolid::core
