#include "core/streaming.h"

#include <algorithm>
#include <stdexcept>

#include "core/subsystem.h"
#include "obs/energy.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "phonotactic/ngram_counts.h"

namespace phonolid::core {

StreamingSession::StreamingSession(const Subsystem& subsystem,
                                   StreamingOptions options)
    : subsystem_(&subsystem),
      options_(std::move(options)),
      features_(*subsystem.features_),
      next_checkpoint_s_(options_.checkpoint_interval_s) {}

double StreamingSession::audio_seconds() const noexcept {
  // The batch path always used the MFCC sample rate for audio accounting
  // (both configs carry the corpus rate); keep that for identical reports.
  return static_cast<double>(features_.samples_pushed()) /
         subsystem_->features_->config().mfcc.sample_rate;
}

void StreamingSession::charge_new_rows() {
  const std::size_t rows = features_.num_rows();
  if (rows > charged_rows_) {
    obs::Energy::charge_flops(static_cast<double>(rows - charged_rows_) *
                              subsystem_->features_->flops_per_frame());
    charged_rows_ = rows;
  }
}

void StreamingSession::push(std::span<const float> samples) {
  if (finalized_) {
    throw std::logic_error("StreamingSession: push() after finalize()");
  }
  {
    obs::Span feature_span("features");
    features_.push(samples);
    charge_new_rows();
    feature_s_ += feature_span.stop();
  }
  maybe_checkpoint();
}

decoder::Lattice StreamingSession::decode_chunked(
    const util::Matrix& feats) const {
  const std::size_t frames = feats.rows();
  std::size_t chunk = frames;
  if (options_.chunk_samples > 0) {
    const auto& fcfg = subsystem_->features_->config();
    const std::size_t shift = (fcfg.kind == dsp::FeatureKind::kMfcc)
                                  ? fcfg.mfcc.frame_shift
                                  : fcfg.plp.frame_shift;
    chunk = std::max<std::size_t>(1, options_.chunk_samples / shift);
  }
  decoder::DecodeSession session(*subsystem_->decoder_);
  util::Matrix scores;
  for (std::size_t begin = 0; begin < frames; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, frames);
    subsystem_->model_->score_range(feats, begin, end, scores);
    session.advance(scores);
  }
  return session.finalize();
}

phonotactic::SparseVec StreamingSession::supervector_of(
    const phonotactic::SparseVec& counts) const {
  phonotactic::SparseVec sv = subsystem_->builder_->build_from_counts(counts);
  if (options_.apply_tfllr && subsystem_->spec_.use_tfllr) {
    subsystem_->tfllr_.transform(sv);
  }
  return sv;
}

void StreamingSession::maybe_checkpoint() {
  if (options_.checkpoint_interval_s <= 0.0) return;
  const double audio_s = audio_seconds();
  if (audio_s < next_checkpoint_s_) return;
  // One checkpoint per crossing push (a single huge chunk yields one
  // checkpoint, not a backlog of identical ones).
  while (next_checkpoint_s_ <= audio_s) {
    next_checkpoint_s_ += options_.checkpoint_interval_s;
  }
  PHONOLID_SPAN("checkpoint");
  StreamingCheckpoint cp;
  cp.audio_s = audio_s;
  cp.frames = features_.num_rows();
  if (cp.frames > 0 && options_.scorer) {
    // Exact batch answer on the prefix: CMVN over the delta-resolved rows
    // seen so far, then the same chunked decode -> counts -> supervector
    // chain finalize() runs on the whole utterance.
    util::Matrix feats = features_.prefix(cp.frames);
    const auto& fcfg = subsystem_->features_->config();
    if (fcfg.cmvn) dsp::cmvn_inplace(feats, fcfg.cmvn_variance);
    const decoder::Lattice lattice = decode_chunked(feats);
    phonotactic::CountAccumulator acc;
    acc.add(subsystem_->builder_->counts(lattice));
    cp.llr = options_.scorer(supervector_of(acc.build()));
    if (!cp.llr.empty()) {
      cp.best_language = static_cast<std::size_t>(
          std::max_element(cp.llr.begin(), cp.llr.end()) - cp.llr.begin());
    }
  }
  checkpoints_.push_back(std::move(cp));
}

StreamingResult StreamingSession::finalize() {
  if (finalized_) {
    throw std::logic_error("StreamingSession: finalize() called twice");
  }
  finalized_ = true;
  StreamingResult res;
  res.audio_s = audio_seconds();

  obs::Span feature_span("features");
  features_.finish();
  charge_new_rows();
  util::Matrix feats = features_.take();
  const auto& fcfg = subsystem_->features_->config();
  if (fcfg.cmvn) dsp::cmvn_inplace(feats, fcfg.cmvn_variance);
  const double feat_s = feature_s_ + feature_span.stop();
  res.frames = feats.rows();

  obs::Span decode_span("decode");
  res.lattice = decode_chunked(feats);
  const double dec_s = decode_span.stop();
  if (dec_s > 0.0 && feats.rows() > 0) {
    const double flops = subsystem_->model_->score_flops_per_frame() *
                         static_cast<double>(feats.rows());
    if (flops > 0.0) {
      PHONOLID_COUNTER_SAMPLE("decode.gflops", flops / dec_s / 1e9);
    }
  }

  obs::Span sv_span("supervector");
  phonotactic::CountAccumulator acc;
  acc.add(subsystem_->builder_->counts(res.lattice));
  res.counts = acc.build();
  res.supervector = supervector_of(res.counts);
  const double sv_s = sv_span.stop();

  res.checkpoints = std::move(checkpoints_);
  {
    std::lock_guard lock(subsystem_->times_mutex_);
    subsystem_->times_.feature_s += feat_s;
    subsystem_->times_.decode_s += dec_s;
    subsystem_->times_.supervector_s += sv_s;
    subsystem_->times_.audio_s += res.audio_s;
  }
  return res;
}

}  // namespace phonolid::core
