// Stage-key derivation for the experiment's stage graph.
//
// Maps the experiment's configuration structs onto pipeline::StageKey
// fingerprints.  Every field that can change a stage's output is hashed —
// corpus shape, front-end spec (incl. decoder and supervector settings),
// VSM hyper-parameters, the experiment seed and the scale preset (so
// PHONOLID_SCALE participates in the key) — plus the upstream stage keys,
// giving the invalidation chain:
//
//   corpus ──> frontend ──> supervectors ──> vsm
//
// A change anywhere upstream flips every downstream key; unrelated stages
// (other front-ends) keep their keys and stay warm.
#pragma once

#include "core/experiment.h"
#include "core/frontend_spec.h"
#include "pipeline/stage_key.h"

namespace phonolid::core {

/// Root of the chain: the corpus generation stage (no artifact of its own —
/// generation is cheap and always runs — but every downstream key includes
/// it so corpus changes invalidate everything).
[[nodiscard]] pipeline::StageKey corpus_stage_key(
    const corpus::CorpusConfig& config, util::Scale scale, std::uint64_t seed);

/// "frontend": phone map + trained acoustic model for one front-end.
[[nodiscard]] pipeline::StageKey frontend_stage_key(
    const pipeline::StageKey& corpus_key, const FrontEndSpec& spec,
    std::uint64_t seed);

/// "supervectors": TFLLR scaler + per-split supervectors.  Fully determined
/// by the front end (the spec hashed into the frontend key already carries
/// the decoder and N-gram configuration).
[[nodiscard]] pipeline::StageKey supervectors_stage_key(
    const pipeline::StageKey& frontend_key);

/// "vsm": the baseline VSM trained on the supervector stage's training
/// split.  `train_seed` is the per-subsystem derived VSM seed.
[[nodiscard]] pipeline::StageKey vsm_stage_key(
    const pipeline::StageKey& supervectors_key, const svm::VsmTrainConfig& vsm,
    std::uint64_t train_seed, std::size_t num_classes);

}  // namespace phonolid::core
