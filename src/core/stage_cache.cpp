#include "core/stage_cache.h"

namespace phonolid::core {

using pipeline::KeyHasher;
using pipeline::StageKey;

StageKey corpus_stage_key(const corpus::CorpusConfig& config,
                          util::Scale scale, std::uint64_t seed) {
  KeyHasher h("corpus");
  h.add_string(util::to_string(scale));
  h.add_u64(seed);
  h.add_u64(config.seed);
  h.add_f64(config.sample_rate);
  h.add_u64(config.num_universal_phones);
  h.add_u64(config.family.num_languages);
  h.add_f64(config.family.concentration);
  h.add_f64(config.family.subset_fraction);
  h.add_u64(config.family.sibling_stride);
  h.add_f64(config.family.sibling_similarity);
  h.add_u64(config.num_native_languages);
  h.add_u64(config.am_train_utts_per_native);
  h.add_f64(config.am_train_seconds);
  h.add_u64(config.train_utts_per_language);
  h.add_u64(config.dev_utts_per_language_per_tier);
  h.add_u64(config.test_utts_per_language_per_tier);
  for (double s : config.tier_seconds) h.add_f64(s);
  h.add_f64(config.train_seconds);
  return h.finish();
}

StageKey frontend_stage_key(const StageKey& corpus_key,
                            const FrontEndSpec& spec, std::uint64_t seed) {
  KeyHasher h("frontend");
  h.add_key(corpus_key);
  h.add_u64(seed);
  h.add_string(spec.name);
  h.add_u64(static_cast<std::uint64_t>(spec.family));
  h.add_u64(static_cast<std::uint64_t>(spec.feature));
  h.add_u64(spec.num_phones);
  h.add_u64(spec.native_language);
  h.add_u64(spec.hidden_sizes.size());
  for (std::size_t s : spec.hidden_sizes) h.add_u64(s);
  h.add_u64(spec.gmm_components);
  h.add_f64(spec.nn_score_gain);
  h.add_u64(spec.ngram_order);
  h.add_bool(spec.use_lattice_counts);
  h.add_bool(spec.use_tfllr);
  h.add_f64(spec.decoder.lattice_beam);
  h.add_f64(spec.decoder.phone_insertion_penalty);
  h.add_f64(spec.decoder.acoustic_scale);
  h.add_f64(spec.decoder.posterior_prune);
  h.add_u64(spec.seed_salt);
  return h.finish();
}

StageKey supervectors_stage_key(const StageKey& frontend_key) {
  KeyHasher h("supervectors");
  h.add_key(frontend_key);
  return h.finish();
}

StageKey vsm_stage_key(const StageKey& supervectors_key,
                       const svm::VsmTrainConfig& vsm, std::uint64_t train_seed,
                       std::size_t num_classes) {
  KeyHasher h("vsm");
  h.add_key(supervectors_key);
  h.add_u64(train_seed);
  h.add_u64(num_classes);
  h.add_f64(vsm.svm.C);
  h.add_bool(vsm.svm.l2_loss);
  h.add_u64(vsm.svm.max_epochs);
  h.add_f64(vsm.svm.epsilon);
  h.add_f64(vsm.svm.bias);
  h.add_u64(vsm.svm.seed);
  return h.finish();
}

}  // namespace phonolid::core
