#include "core/dba.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace phonolid::core {

VoteResult compute_votes(const std::vector<const util::Matrix*>& scores,
                         VoteCriterion criterion) {
  static obs::Counter& votes_cast = obs::Metrics::counter("dba.votes_cast");
  static obs::Counter& vote_passes =
      obs::Metrics::counter("dba.vote_passes");
  PHONOLID_SPAN("dba_votes");
  vote_passes.add();
  if (scores.empty()) throw std::invalid_argument("compute_votes: no scores");
  const std::size_t m = scores[0]->rows();
  const std::size_t k = scores[0]->cols();
  for (const auto* s : scores) {
    if (s->rows() != m || s->cols() != k) {
      throw std::invalid_argument("compute_votes: inconsistent score shapes");
    }
  }

  VoteResult result;
  result.num_utts = m;
  result.num_classes = k;
  result.num_subsystems = scores.size();
  result.counts.assign(m * k, 0);
  result.per_subsystem.assign(scores.size(),
                              std::vector<std::uint8_t>(m * k, 0));
  result.margins.assign(scores.size(), std::vector<float>(m * k, 0.0f));

  for (std::size_t q = 0; q < scores.size(); ++q) {
    const util::Matrix& f = *scores[q];
    auto& bits = result.per_subsystem[q];
    auto& margins = result.margins[q];
    for (std::size_t j = 0; j < m; ++j) {
      auto row = f.row(j);
      // Top-1 and runner-up in one pass.
      std::size_t best = 0;
      float best_score = row[0];
      float second_score = -std::numeric_limits<float>::infinity();
      for (std::size_t c = 1; c < k; ++c) {
        if (row[c] > best_score) {
          second_score = best_score;
          best_score = row[c];
          best = c;
        } else if (row[c] > second_score) {
          second_score = row[c];
        }
      }
      // Signed per-class margins: positive iff this subsystem votes for the
      // class under `criterion`.  `rival` is the best score among the other
      // classes, so for non-argmax classes the margin is always negative.
      for (std::size_t c = 0; c < k; ++c) {
        const float rival = (c == best) ? second_score : best_score;
        float margin = 0.0f;
        switch (criterion) {
          case VoteCriterion::kStrict:
            margin = std::min(row[c], -rival);
            break;
          case VoteCriterion::kPositiveArgmax:
            margin = std::min(row[c], row[c] - rival);
            break;
          case VoteCriterion::kArgmax:
            margin = row[c] - rival;
            break;
        }
        margins[j * k + c] = margin;
      }
      bool votes = false;
      switch (criterion) {
        case VoteCriterion::kStrict:
          // Eq. 13: own score positive, every rival negative.
          votes = best_score > 0.0f && second_score < 0.0f;
          break;
        case VoteCriterion::kPositiveArgmax:
          votes = best_score > 0.0f;
          break;
        case VoteCriterion::kArgmax:
          votes = true;
          break;
      }
      if (votes) {
        bits[j * k + best] = 1;
        ++result.counts[j * k + best];
      }
    }
  }
  std::uint64_t total = 0;
  for (const std::uint16_t c : result.counts) total += c;
  votes_cast.add(total);
  return result;
}

TrdbaSelection select_trdba(const VoteResult& votes, std::size_t min_votes) {
  static obs::Counter& adopted = obs::Metrics::counter("dba.utts_adopted");
  static obs::Counter& selections = obs::Metrics::counter("dba.selections");
  if (min_votes == 0) {
    throw std::invalid_argument("select_trdba: min_votes must be >= 1");
  }
  TrdbaSelection sel;
  sel.min_votes = min_votes;
  sel.subsystem_fit_counts.assign(votes.num_subsystems, 0);
  for (const std::uint16_t c : votes.counts) sel.votes_cast += c;
  const std::size_t k = votes.num_classes;
  for (std::size_t j = 0; j < votes.num_utts; ++j) {
    std::size_t best = 0;
    std::uint16_t best_count = 0;
    bool tie = false;
    for (std::size_t c = 0; c < k; ++c) {
      const std::uint16_t count = votes.counts[j * k + c];
      if (count > best_count) {
        best_count = count;
        best = c;
        tie = false;
      } else if (count == best_count && count > 0) {
        tie = true;
      }
    }
    if (best_count < min_votes || tie) continue;
    adopted.add();
    sel.utt_index.push_back(static_cast<std::uint32_t>(j));
    sel.label.push_back(static_cast<std::int32_t>(best));
    for (std::size_t q = 0; q < votes.num_subsystems; ++q) {
      if (votes.vote(q, j, best)) ++sel.subsystem_fit_counts[q];
    }
  }
  selections.add();
  return sel;
}

double selection_error_rate(const TrdbaSelection& selection,
                            const std::vector<std::int32_t>& true_labels) {
  if (selection.utt_index.empty()) return 0.0;
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < selection.utt_index.size(); ++i) {
    if (true_labels.at(selection.utt_index[i]) != selection.label[i]) {
      ++wrong;
    }
  }
  return static_cast<double>(wrong) /
         static_cast<double>(selection.utt_index.size());
}

const char* to_string(DbaMode mode) noexcept {
  switch (mode) {
    case DbaMode::kM1: return "DBA-M1";
    case DbaMode::kM2: return "DBA-M2";
  }
  return "?";
}

void compose_trdba(DbaMode mode, const TrdbaSelection& selection,
                   const std::vector<phonotactic::SparseVec>& test_svs,
                   const std::vector<phonotactic::SparseVec>& train_svs,
                   const std::vector<std::int32_t>& train_labels,
                   std::vector<const phonotactic::SparseVec*>& out_x,
                   std::vector<std::int32_t>& out_y) {
  out_x.clear();
  out_y.clear();
  const std::size_t adopted = selection.utt_index.size();
  const std::size_t total =
      adopted + (mode == DbaMode::kM2 ? train_svs.size() : 0);
  out_x.reserve(total);
  out_y.reserve(total);
  for (std::size_t i = 0; i < adopted; ++i) {
    out_x.push_back(&test_svs.at(selection.utt_index[i]));
    out_y.push_back(selection.label[i]);
  }
  if (mode == DbaMode::kM2) {
    if (train_labels.size() != train_svs.size()) {
      throw std::invalid_argument("compose_trdba: train label mismatch");
    }
    for (std::size_t i = 0; i < train_svs.size(); ++i) {
      out_x.push_back(&train_svs[i]);
      out_y.push_back(train_labels[i]);
    }
  }
}

}  // namespace phonolid::core
