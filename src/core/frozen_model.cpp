#include "core/frozen_model.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/experiment.h"
#include "eval/metrics.h"
#include "obs/json.h"
#include "pipeline/artifact_store.h"
#include "pipeline/stage_key.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace phonolid::core {

namespace {

constexpr char kBundleMagic[4] = {'P', 'F', 'Z', 'M'};
constexpr char kManifestName[] = "MANIFEST.json";

pipeline::StageKey bundle_key(const std::string& scale, std::uint64_t seed) {
  return pipeline::KeyHasher("bundle")
      .add_u64(kBundleFormatVersion)
      .add_string(scale)
      .add_u64(seed)
      .finish();
}

/// The "PFZM" payload inside the ArtifactStore envelope.  `subsystems` are
/// borrowed — both the freeze path (Experiment-owned) and save_bundle
/// (FrozenModel-owned) serialize through the same writer.
void write_payload(std::ostream& out, const std::string& scale,
                   std::uint64_t seed, double sample_rate,
                   const std::vector<std::string>& languages,
                   std::span<const Subsystem* const> subsystems,
                   const std::vector<FrozenHead>& heads,
                   const backend::ScoreFusion& fusion) {
  util::BinaryWriter w(out);
  w.write_magic(kBundleMagic, kBundleFormatVersion);
  w.write_string(scale);
  w.write_u64(seed);
  w.write_f64(sample_rate);
  w.write_u64(languages.size());
  for (const auto& lang : languages) w.write_string(lang);
  w.write_u64(subsystems.size());
  for (const Subsystem* sub : subsystems) {
    sub->spec().serialize(out);
    sub->serialize_front_end(out);
    sub->tfllr().serialize(out);
  }
  w.write_u64(heads.size());
  for (const FrozenHead& head : heads) {
    w.write_u32(head.subsystem);
    head.vsm.serialize(out);
  }
  fusion.serialize(out);
}

void write_bundle_dir(const std::string& dir, const std::string& scale,
                      std::uint64_t seed, double sample_rate,
                      const std::vector<std::string>& languages,
                      std::span<const Subsystem* const> subsystems,
                      const std::vector<FrozenHead>& heads,
                      const backend::ScoreFusion& fusion) {
  pipeline::ArtifactStore store(dir);
  const pipeline::StageKey key = bundle_key(scale, seed);
  store.save(key, [&](std::ostream& out) {
    write_payload(out, scale, seed, sample_rate, languages, subsystems, heads,
                  fusion);
  });
  // The envelope save is deliberately non-fatal for pipeline caches; a
  // freeze that produced no artifact must fail instead.
  if (!std::ifstream(store.path_for(key)).good()) {
    throw std::runtime_error("freeze: failed to write bundle artifact under " +
                             dir);
  }

  obs::Json manifest = obs::Json::object();
  manifest["bundle_format"] = obs::Json(kBundleFormatVersion);
  manifest["pipeline_format"] = obs::Json(pipeline::kPipelineFormatVersion);
  manifest["stage"] = obs::Json(key.stage);
  manifest["key"] = obs::Json(key.hex());
  manifest["scale"] = obs::Json(scale);
  manifest["seed"] = obs::Json(seed);
  manifest["sample_rate"] = obs::Json(sample_rate);
  obs::Json langs = obs::Json::array();
  for (const auto& lang : languages) langs.push_back(obs::Json(lang));
  manifest["languages"] = std::move(langs);
  manifest["subsystems"] = obs::Json(subsystems.size());
  manifest["heads"] = obs::Json(heads.size());

  const std::string manifest_path = dir + "/" + kManifestName;
  std::ofstream out(manifest_path, std::ios::trunc);
  manifest.dump(out);
  out << '\n';
  if (!out) {
    throw std::runtime_error("freeze: failed to write " + manifest_path);
  }
  PHONOLID_INFO("core") << "froze model bundle at " << dir << " ("
                        << subsystems.size() << " front ends, " << heads.size()
                        << " heads)";
}

}  // namespace

FrozenModel::FrozenModel(std::string scale, std::uint64_t seed,
                         double sample_rate,
                         std::vector<std::string> languages,
                         std::vector<std::unique_ptr<Subsystem>> subsystems,
                         std::vector<FrozenHead> heads,
                         backend::ScoreFusion fusion)
    : scale_(std::move(scale)),
      seed_(seed),
      sample_rate_(sample_rate),
      languages_(std::move(languages)),
      subsystems_(std::move(subsystems)),
      heads_(std::move(heads)),
      fusion_(std::move(fusion)) {
  if (languages_.size() < 2) {
    throw std::invalid_argument("FrozenModel: need at least two languages");
  }
  if (subsystems_.empty() || heads_.empty()) {
    throw std::invalid_argument("FrozenModel: need subsystems and heads");
  }
  for (const FrozenHead& head : heads_) {
    if (head.subsystem >= subsystems_.size()) {
      throw std::invalid_argument("FrozenModel: head subsystem out of range");
    }
    if (head.vsm.num_classes() != languages_.size()) {
      throw std::invalid_argument("FrozenModel: head class count mismatch");
    }
  }
  if (fusion_.num_subsystems() != heads_.size()) {
    throw std::invalid_argument(
        "FrozenModel: fusion block count != head count");
  }
}

void FrozenModel::save_bundle(const std::string& dir) const {
  std::vector<const Subsystem*> subs;
  subs.reserve(subsystems_.size());
  for (const auto& sub : subsystems_) subs.push_back(sub.get());
  write_bundle_dir(dir, scale_, seed_, sample_rate_, languages_, subs, heads_,
                   fusion_);
}

void FrozenModel::write_bundle(const std::string& dir, const Experiment& exp,
                               const std::vector<FrozenHead>& heads,
                               const backend::ScoreFusion& fusion) {
  std::vector<std::string> languages;
  for (const corpus::LanguageSpec& spec : exp.corpus().target_languages()) {
    languages.push_back(spec.name());
  }
  std::vector<const Subsystem*> subs;
  subs.reserve(exp.num_subsystems());
  for (std::size_t s = 0; s < exp.num_subsystems(); ++s) {
    subs.push_back(&exp.subsystem(s));
  }
  write_bundle_dir(dir, util::to_string(exp.config().scale),
                   exp.config().seed, exp.config().corpus.sample_rate,
                   languages, subs, heads, fusion);
}

FrozenModel FrozenModel::load_bundle(const std::string& dir) {
  const std::string manifest_path = dir + "/" + kManifestName;
  std::ifstream manifest_in(manifest_path);
  if (!manifest_in) {
    throw std::runtime_error("not a model bundle (missing " + manifest_path +
                             ")");
  }
  std::ostringstream manifest_text;
  manifest_text << manifest_in.rdbuf();
  const obs::Json manifest = obs::Json::parse(manifest_text.str());

  const obs::Json* format = manifest.find("bundle_format");
  if (format == nullptr || !format->is_int()) {
    throw std::runtime_error("bundle manifest: missing bundle_format");
  }
  if (format->as_int() != kBundleFormatVersion) {
    throw std::runtime_error(
        "bundle format v" + std::to_string(format->as_int()) +
        " unsupported (this build reads v" +
        std::to_string(kBundleFormatVersion) + ")");
  }
  const obs::Json* stage = manifest.find("stage");
  const obs::Json* key_hex = manifest.find("key");
  if (stage == nullptr || !stage->is_string() || key_hex == nullptr ||
      !key_hex->is_string()) {
    throw std::runtime_error("bundle manifest: missing stage key");
  }
  pipeline::StageKey key;
  key.stage = stage->as_string();
  key.hash = std::strtoull(key_hex->as_string().c_str(), nullptr, 16);

  pipeline::ArtifactStore store(dir);
  std::string scale;
  std::uint64_t seed = 0;
  double sample_rate = 0.0;
  std::vector<std::string> languages;
  std::vector<std::unique_ptr<Subsystem>> subsystems;
  std::vector<FrozenHead> heads;
  backend::ScoreFusion fusion;
  const bool hit = store.load(key, [&](std::istream& in) {
    util::BinaryReader r(in);
    r.expect_magic(kBundleMagic, kBundleFormatVersion);
    scale = r.read_string();
    seed = r.read_u64();
    sample_rate = r.read_f64();
    const std::uint64_t num_languages = r.read_u64();
    if (num_languages > 4096) {
      throw util::SerializeError("bundle: implausible language count");
    }
    for (std::uint64_t i = 0; i < num_languages; ++i) {
      languages.push_back(r.read_string());
    }
    const std::uint64_t num_subsystems = r.read_u64();
    if (num_subsystems > 4096) {
      throw util::SerializeError("bundle: implausible subsystem count");
    }
    for (std::uint64_t s = 0; s < num_subsystems; ++s) {
      FrontEndSpec spec = FrontEndSpec::deserialize(in);
      TrainedFrontEnd fe = TrainedFrontEnd::deserialize(in);
      auto sub = Subsystem::assemble(sample_rate, spec, std::move(fe));
      sub->set_tfllr(phonotactic::TfllrScaler::deserialize(in));
      subsystems.push_back(std::move(sub));
    }
    const std::uint64_t num_heads = r.read_u64();
    if (num_heads > 4096) {
      throw util::SerializeError("bundle: implausible head count");
    }
    for (std::uint64_t h = 0; h < num_heads; ++h) {
      FrozenHead head;
      head.subsystem = r.read_u32();
      head.vsm = svm::VsmModel::deserialize(in);
      heads.push_back(std::move(head));
    }
    fusion = backend::ScoreFusion::deserialize(in);
  });
  if (!hit) {
    throw std::runtime_error("bundle at " + dir +
                             " is missing or corrupt (stage key " +
                             key.stage + "-" + key.hex() + ")");
  }
  return FrozenModel(std::move(scale), seed, sample_rate, std::move(languages),
                     std::move(subsystems), std::move(heads),
                     std::move(fusion));
}

BatchScore FrozenModel::score_batch(
    const std::vector<std::span<const float>>& utterances) const {
  const std::size_t n = utterances.size();
  const std::size_t num_subs = subsystems_.size();
  const std::size_t k = languages_.size();
  BatchScore out;
  if (n == 0) {
    out.llr = util::Matrix(0, k);
    return out;
  }

  // One streaming session per (utterance, subsystem) on the helping-wait
  // pool; the batch path is the one-chunk session, so these supervectors
  // match the offline decode bit for bit.
  std::vector<std::vector<phonotactic::SparseVec>> svs(num_subs);
  for (auto& per_sub : svs) per_sub.resize(n);
  util::parallel_for(0, num_subs * n, [&](std::size_t idx) {
    const std::size_t s = idx / n;
    const std::size_t i = idx % n;
    svs[s][i] = subsystems_[s]
                    ->score_stream(utterances[i], StreamingOptions{})
                    .supervector;
  });

  // Per-head score blocks, then the exact offline fusion chain: Matrix
  // overloads throughout (same accumulation order as evaluate()).
  std::vector<util::Matrix> blocks(heads_.size());
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    blocks[h].resize(n, k);
    for (std::size_t i = 0; i < n; ++i) {
      heads_[h].vsm.score(svs[heads_[h].subsystem][i], blocks[h].row(i));
    }
  }
  const util::Matrix log_post = fusion_.apply(blocks);
  out.llr = eval::log_posteriors_to_llr(log_post);
  out.best.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = out.llr.row(i);
    std::size_t best = 0;
    for (std::size_t c = 1; c < k; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out.best[i] = static_cast<std::uint32_t>(best);
  }
  return out;
}

}  // namespace phonolid::core
