// One PPRVSM subsystem: front-end phone recognizer + supervector chain.
//
// Owns everything from raw audio to TFLLR-scaled supervectors for one
// front-end: the phone-set map, the feature pipeline, the trained acoustic
// model, the phone-loop lattice decoder, and the N-gram supervector
// builder.  The DBA iteration re-trains only the VSM on top; all Subsystem
// stages are computed once per utterance, which is the source of the
// paper's C_DBA/C_baseline ≈ 1 result (§5.4).
//
// The construction path is split into persistable stage products so the
// artifact store (pipeline/artifact_store.h) can skip whole stages on a
// warm run:
//
//   TrainedFrontEnd      = train_front_end(corpus, spec, seed)   [expensive]
//   Subsystem            = assemble(corpus, spec, fe)            [cheap]
//   DecodedSupervectors  = subsystem.decode_splits(corpus)       [dominant]
//
// build() composes all three for callers that don't cache (examples,
// `phonolid decode`, tests).
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "am/gmm_hmm.h"
#include "am/nn_hmm.h"
#include "core/frontend_spec.h"
#include "core/streaming.h"
#include "corpus/dataset.h"
#include "decoder/phone_loop_decoder.h"
#include "phonotactic/supervector.h"
#include "svm/vsm.h"

namespace phonolid::core {

/// Accumulated wall-clock per pipeline stage, for the paper's real-time
/// factor analysis (Table 5) and cost model (Eq. 16-19).
struct StageTimes {
  double feature_s = 0.0;
  double decode_s = 0.0;
  double supervector_s = 0.0;
  double audio_s = 0.0;  // seconds of audio processed

  StageTimes& operator+=(const StageTimes& o) noexcept {
    feature_s += o.feature_s;
    decode_s += o.decode_s;
    supervector_s += o.supervector_s;
    audio_s += o.audio_s;
    return *this;
  }
};

/// Stage product of the front-end training stage: the phone-set map and the
/// acoustic model (the parts of a Subsystem that cost AM training time; the
/// feature pipeline / decoder / supervector builder are rebuilt from the
/// spec in milliseconds).
struct TrainedFrontEnd {
  ModelFamily family = ModelFamily::kGmmHmm;
  am::PhoneSetMap phone_map;
  std::unique_ptr<am::AcousticModel> model;

  /// HMM transition model of the concrete acoustic model (needed to
  /// reconstruct the phone-loop decoder).
  [[nodiscard]] const am::HmmTransitions& transitions() const;

  void serialize(std::ostream& out) const;
  static TrainedFrontEnd deserialize(std::istream& in);
};

/// Stage product of the decode stage: TFLLR-scaled supervectors for every
/// split plus the fitted scaler (so a warm Subsystem can still process new
/// utterances).  This is the dominant artifact — a hit skips every feature
/// extraction and lattice decode of the run.
struct DecodedSupervectors {
  phonotactic::TfllrScaler tfllr;
  std::vector<phonotactic::SparseVec> train;
  std::vector<phonotactic::SparseVec> dev;
  std::vector<phonotactic::SparseVec> test;

  void serialize(std::ostream& out) const;
  static DecodedSupervectors deserialize(std::istream& in);
};

class Subsystem {
 public:
  /// Train the front-end on its native-language aligned audio and fit the
  /// TFLLR background on the VSM training set.  The scaled training-set
  /// supervectors computed during the TFLLR fit are cached and retrievable
  /// once via take_train_supervectors().
  static std::unique_ptr<Subsystem> build(const corpus::LreCorpus& corpus,
                                          const FrontEndSpec& spec,
                                          std::uint64_t seed);

  /// Stage 1: phone map + acoustic model (the only seeded, training-cost
  /// parts).  Throws std::invalid_argument when spec.native_language is out
  /// of range.
  static TrainedFrontEnd train_front_end(const corpus::LreCorpus& corpus,
                                         const FrontEndSpec& spec,
                                         std::uint64_t seed);

  /// Rebuild a full Subsystem around a (possibly deserialized) front end.
  /// The TFLLR scaler starts unset: fit it via decode_splits() or install a
  /// cached one via set_tfllr().
  static std::unique_ptr<Subsystem> assemble(const corpus::LreCorpus& corpus,
                                             const FrontEndSpec& spec,
                                             TrainedFrontEnd front_end);

  /// Corpus-free assembly (frozen-bundle inference): the corpus enters the
  /// overload above only through its sample rate, so a deserialized front end
  /// plus the recording sample rate fully determine the scoring chain.
  static std::unique_ptr<Subsystem> assemble(double sample_rate,
                                             const FrontEndSpec& spec,
                                             TrainedFrontEnd front_end);

  /// Stage 2: decode every split, fit the TFLLR background on the training
  /// set and return the per-split scaled supervectors.  Also installs the
  /// fitted scaler on this subsystem.
  [[nodiscard]] DecodedSupervectors decode_splits(
      const corpus::LreCorpus& corpus);

  /// Install a cached TFLLR scaler (warm path — decode_splits was skipped).
  void set_tfllr(phonotactic::TfllrScaler tfllr);

  Subsystem(const Subsystem&) = delete;
  Subsystem& operator=(const Subsystem&) = delete;

  [[nodiscard]] const FrontEndSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] std::size_t supervector_dim() const noexcept {
    return builder_->dimension();
  }
  [[nodiscard]] const am::PhoneSetMap& phone_map() const noexcept {
    return phone_map_;
  }
  [[nodiscard]] const am::AcousticModel& acoustic_model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const phonotactic::TfllrScaler& tfllr() const noexcept {
    return tfllr_;
  }

  /// Re-serialize this subsystem's front end in the TrainedFrontEnd wire
  /// format ("PTFE") — the assemble() step moved the acoustic model into the
  /// subsystem, so bundle freezing snapshots it from here.
  void serialize_front_end(std::ostream& out) const;

  /// VSM training-set supervectors cached during build (moves them out).
  /// Calling twice is always a bug — the second call would silently return
  /// an empty set — so it throws std::logic_error.  Artifact-backed callers
  /// (Experiment) use decode_splits() instead.
  [[nodiscard]] std::vector<phonotactic::SparseVec> take_train_supervectors();

  /// Decode one utterance to a posterior lattice (exposed for examples and
  /// diagnostics).
  [[nodiscard]] decoder::Lattice decode(const corpus::Utterance& utt) const;

  /// Full chain for one utterance: audio -> features -> lattice -> TFLLR
  /// supervector.  Internally a single streaming session (the batch path is
  /// the one-chunk special case — see core/streaming.h).
  [[nodiscard]] phonotactic::SparseVec process(
      const corpus::Utterance& utt) const;

  /// Open a streaming session for one utterance: push audio chunks, collect
  /// checkpoint LLRs, finalize to the batch-identical result.  The session
  /// borrows this subsystem (must outlive it); any number of concurrent
  /// sessions are safe.
  [[nodiscard]] StreamingSession open_stream(StreamingOptions options = {}) const;

  /// Convenience: stream `samples` through a fresh session in
  /// `options.chunk_samples`-sized pushes (one push when 0) and finalize.
  /// This is the checkpointed-LLR entry point (paper-style early decisions:
  /// set `options.checkpoint_interval_s` and `options.scorer`).
  [[nodiscard]] StreamingResult score_stream(
      std::span<const float> samples, const StreamingOptions& options) const;

  /// Chunk granularity (in samples) the batch entry points (process /
  /// process_all / decode) use for their internal streaming session.
  /// 0 = whole utterance.  Any value is bit-identical; exposed so runs can
  /// prove it (CLI --chunk-ms, tier1 equivalence gate).
  void set_batch_chunk_samples(std::size_t samples) noexcept {
    batch_chunk_samples_ = samples;
  }
  [[nodiscard]] std::size_t batch_chunk_samples() const noexcept {
    return batch_chunk_samples_;
  }

  /// Parallel batch processing; also accumulates stage times.
  [[nodiscard]] std::vector<phonotactic::SparseVec> process_all(
      const corpus::Dataset& data) const;

  /// Stage-time counters (accumulated across every process/process_all call).
  [[nodiscard]] StageTimes stage_times() const;
  void reset_stage_times() const;

 private:
  friend class StreamingSession;

  Subsystem() = default;

  /// Shared stage chain (features -> decode -> supervector) used by both the
  /// TFLLR-fit pass in decode_splits() (apply_tfllr = false; scaling happens
  /// after the background fit) and process(); emits trace spans and
  /// accumulates StageTimes in one place.
  [[nodiscard]] phonotactic::SparseVec process_internal(
      const corpus::Utterance& utt, bool apply_tfllr) const;

  /// Decode the VSM training set, fit + install the TFLLR background and
  /// return the (scaled, when spec.use_tfllr) training supervectors.
  [[nodiscard]] std::vector<phonotactic::SparseVec> fit_tfllr(
      const corpus::Dataset& train);

  FrontEndSpec spec_;
  am::PhoneSetMap phone_map_;
  std::unique_ptr<dsp::FeaturePipeline> features_;
  std::unique_ptr<am::AcousticModel> model_;
  std::unique_ptr<decoder::PhoneLoopDecoder> decoder_;
  std::unique_ptr<phonotactic::SupervectorBuilder> builder_;
  phonotactic::TfllrScaler tfllr_;
  std::vector<phonotactic::SparseVec> train_supervectors_;
  bool train_supervectors_taken_ = false;
  std::size_t batch_chunk_samples_ = 0;

  mutable std::mutex times_mutex_;
  mutable StageTimes times_;
};

}  // namespace phonolid::core
