// One PPRVSM subsystem: front-end phone recognizer + supervector chain.
//
// Owns everything from raw audio to TFLLR-scaled supervectors for one
// front-end: the phone-set map, the feature pipeline, the trained acoustic
// model, the phone-loop lattice decoder, and the N-gram supervector
// builder.  The DBA iteration re-trains only the VSM on top; all Subsystem
// stages are computed once per utterance, which is the source of the
// paper's C_DBA/C_baseline ≈ 1 result (§5.4).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "am/gmm_hmm.h"
#include "am/nn_hmm.h"
#include "core/frontend_spec.h"
#include "corpus/dataset.h"
#include "decoder/phone_loop_decoder.h"
#include "phonotactic/supervector.h"
#include "svm/vsm.h"

namespace phonolid::core {

/// Accumulated wall-clock per pipeline stage, for the paper's real-time
/// factor analysis (Table 5) and cost model (Eq. 16-19).
struct StageTimes {
  double feature_s = 0.0;
  double decode_s = 0.0;
  double supervector_s = 0.0;
  double audio_s = 0.0;  // seconds of audio processed

  StageTimes& operator+=(const StageTimes& o) noexcept {
    feature_s += o.feature_s;
    decode_s += o.decode_s;
    supervector_s += o.supervector_s;
    audio_s += o.audio_s;
    return *this;
  }
};

class Subsystem {
 public:
  /// Train the front-end on its native-language aligned audio and fit the
  /// TFLLR background on the VSM training set.  The scaled training-set
  /// supervectors computed during the TFLLR fit are cached and retrievable
  /// once via take_train_supervectors().
  static std::unique_ptr<Subsystem> build(const corpus::LreCorpus& corpus,
                                          const FrontEndSpec& spec,
                                          std::uint64_t seed);

  Subsystem(const Subsystem&) = delete;
  Subsystem& operator=(const Subsystem&) = delete;

  [[nodiscard]] const FrontEndSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] std::size_t supervector_dim() const noexcept {
    return builder_->dimension();
  }
  [[nodiscard]] const am::PhoneSetMap& phone_map() const noexcept {
    return phone_map_;
  }
  [[nodiscard]] const am::AcousticModel& acoustic_model() const noexcept {
    return *model_;
  }

  /// VSM training-set supervectors cached during build (moves them out).
  [[nodiscard]] std::vector<phonotactic::SparseVec> take_train_supervectors() {
    return std::move(train_supervectors_);
  }

  /// Decode one utterance to a posterior lattice (exposed for examples and
  /// diagnostics).
  [[nodiscard]] decoder::Lattice decode(const corpus::Utterance& utt) const;

  /// Full chain for one utterance: audio -> features -> lattice -> TFLLR
  /// supervector.
  [[nodiscard]] phonotactic::SparseVec process(
      const corpus::Utterance& utt) const;

  /// Parallel batch processing; also accumulates stage times.
  [[nodiscard]] std::vector<phonotactic::SparseVec> process_all(
      const corpus::Dataset& data) const;

  /// Stage-time counters (accumulated across every process/process_all call).
  [[nodiscard]] StageTimes stage_times() const;
  void reset_stage_times() const;

 private:
  Subsystem() = default;

  /// Shared stage chain (features -> decode -> supervector) used by both the
  /// TFLLR-fit pass in build() (apply_tfllr = false; scaling happens after
  /// the background fit) and process(); emits trace spans and accumulates
  /// StageTimes in one place.
  [[nodiscard]] phonotactic::SparseVec process_internal(
      const corpus::Utterance& utt, bool apply_tfllr) const;

  FrontEndSpec spec_;
  am::PhoneSetMap phone_map_;
  std::unique_ptr<dsp::FeaturePipeline> features_;
  std::unique_ptr<am::AcousticModel> model_;
  std::unique_ptr<decoder::PhoneLoopDecoder> decoder_;
  std::unique_ptr<phonotactic::SupervectorBuilder> builder_;
  phonotactic::TfllrScaler tfllr_;
  std::vector<phonotactic::SparseVec> train_supervectors_;

  mutable std::mutex times_mutex_;
  mutable StageTimes times_;
};

}  // namespace phonolid::core
