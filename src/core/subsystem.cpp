#include "core/subsystem.h"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace phonolid::core {

const am::HmmTransitions& TrainedFrontEnd::transitions() const {
  switch (family) {
    case ModelFamily::kGmmHmm:
      return static_cast<const am::GmmHmmModel&>(*model).transitions();
    case ModelFamily::kAnnHmm:
    case ModelFamily::kDnnHmm:
      return static_cast<const am::NnHmmModel&>(*model).transitions();
  }
  throw std::logic_error("TrainedFrontEnd: unknown model family");
}

namespace {

/// "PTFE" wire format shared by TrainedFrontEnd::serialize (pre-assembly)
/// and Subsystem::serialize_front_end (post-assembly, for bundle freezing).
void write_front_end(std::ostream& out, ModelFamily family,
                     const am::PhoneSetMap& phone_map,
                     const am::AcousticModel& model) {
  util::BinaryWriter w(out);
  w.write_magic("PTFE", 1);
  w.write_u32(static_cast<std::uint32_t>(family));
  std::vector<std::uint32_t> mapping(phone_map.mapping().size());
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    mapping[i] = static_cast<std::uint32_t>(phone_map.mapping()[i]);
  }
  w.write_u32_vec(mapping);
  w.write_u64(phone_map.num_frontend_phones());
  switch (family) {
    case ModelFamily::kGmmHmm:
      static_cast<const am::GmmHmmModel&>(model).serialize(out);
      break;
    case ModelFamily::kAnnHmm:
    case ModelFamily::kDnnHmm:
      static_cast<const am::NnHmmModel&>(model).serialize(out);
      break;
  }
}

}  // namespace

void TrainedFrontEnd::serialize(std::ostream& out) const {
  write_front_end(out, family, phone_map, *model);
}

TrainedFrontEnd TrainedFrontEnd::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic("PTFE", 1);
  TrainedFrontEnd fe;
  const std::uint32_t family_tag = r.read_u32();
  if (family_tag > static_cast<std::uint32_t>(ModelFamily::kGmmHmm)) {
    throw util::SerializeError("TrainedFrontEnd: bad model family tag");
  }
  fe.family = static_cast<ModelFamily>(family_tag);
  const std::vector<std::uint32_t> mapping32 = r.read_u32_vec();
  std::vector<std::size_t> mapping(mapping32.begin(), mapping32.end());
  const std::uint64_t num_phones = r.read_u64();
  fe.phone_map =
      am::PhoneSetMap(std::move(mapping), static_cast<std::size_t>(num_phones));
  switch (fe.family) {
    case ModelFamily::kGmmHmm:
      fe.model =
          std::make_unique<am::GmmHmmModel>(am::GmmHmmModel::deserialize(in));
      break;
    case ModelFamily::kAnnHmm:
    case ModelFamily::kDnnHmm:
      fe.model =
          std::make_unique<am::NnHmmModel>(am::NnHmmModel::deserialize(in));
      break;
  }
  return fe;
}

namespace {

void serialize_split(util::BinaryWriter& w, std::ostream& out,
                     const std::vector<phonotactic::SparseVec>& split) {
  w.write_u64(split.size());
  for (const auto& sv : split) sv.serialize(out);
}

std::vector<phonotactic::SparseVec> deserialize_split(util::BinaryReader& r,
                                                      std::istream& in) {
  const std::uint64_t n = r.read_u64();
  // A split is bounded by the corpus size; anything bigger is corruption.
  if (n > (1ull << 24)) {
    throw util::SerializeError("DecodedSupervectors: split too large");
  }
  std::vector<phonotactic::SparseVec> split;
  split.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    split.push_back(phonotactic::SparseVec::deserialize(in));
  }
  return split;
}

}  // namespace

void DecodedSupervectors::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic("PDSV", 1);
  tfllr.serialize(out);
  serialize_split(w, out, train);
  serialize_split(w, out, dev);
  serialize_split(w, out, test);
}

DecodedSupervectors DecodedSupervectors::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic("PDSV", 1);
  DecodedSupervectors ds;
  ds.tfllr = phonotactic::TfllrScaler::deserialize(in);
  ds.train = deserialize_split(r, in);
  ds.dev = deserialize_split(r, in);
  ds.test = deserialize_split(r, in);
  return ds;
}

TrainedFrontEnd Subsystem::train_front_end(const corpus::LreCorpus& corpus,
                                           const FrontEndSpec& spec,
                                           std::uint64_t seed) {
  PHONOLID_SPAN("train_front_end");
  const std::uint64_t sub_seed = util::derive_stream(seed, spec.seed_salt);
  TrainedFrontEnd fe;
  fe.family = spec.family;

  // 1. Front-end phone set.
  fe.phone_map =
      am::build_phone_map(corpus.inventory(), spec.num_phones, sub_seed);

  // 2. Feature pipeline (local: only needed to align the training audio).
  dsp::FeaturePipelineConfig fcfg;
  fcfg.kind = spec.feature;
  fcfg.mfcc.sample_rate = corpus.config().sample_rate;
  fcfg.plp.sample_rate = corpus.config().sample_rate;
  const dsp::FeaturePipeline features(fcfg);

  // 3. Supervision: align the native-language aligned audio.
  if (spec.native_language >= corpus.native_languages().size()) {
    throw std::invalid_argument("Subsystem: native language out of range");
  }
  const corpus::Dataset& am_data = corpus.am_train(spec.native_language);
  std::vector<am::AlignedUtterance> aligned(am_data.size());
  util::parallel_for(0, am_data.size(), [&](std::size_t i) {
    aligned[i] = am::align_utterance(am_data[i], features, fe.phone_map);
  });

  // 4. Acoustic model per family.
  switch (spec.family) {
    case ModelFamily::kGmmHmm: {
      am::GmmHmmTrainConfig cfg;
      cfg.gmm.num_components = spec.gmm_components;
      cfg.seed = sub_seed;
      fe.model = std::make_unique<am::GmmHmmModel>(
          am::train_gmm_hmm(aligned, spec.num_phones, cfg));
      break;
    }
    case ModelFamily::kAnnHmm:
    case ModelFamily::kDnnHmm: {
      am::NnHmmTrainConfig cfg;
      cfg.nn.hidden_sizes = spec.hidden_sizes;
      cfg.score_gain = spec.nn_score_gain;
      cfg.seed = sub_seed;
      fe.model = std::make_unique<am::NnHmmModel>(
          am::train_nn_hmm(aligned, spec.num_phones, cfg));
      break;
    }
  }
  return fe;
}

std::unique_ptr<Subsystem> Subsystem::assemble(const corpus::LreCorpus& corpus,
                                               const FrontEndSpec& spec,
                                               TrainedFrontEnd front_end) {
  return assemble(corpus.config().sample_rate, spec, std::move(front_end));
}

std::unique_ptr<Subsystem> Subsystem::assemble(double sample_rate,
                                               const FrontEndSpec& spec,
                                               TrainedFrontEnd front_end) {
  auto sub = std::unique_ptr<Subsystem>(new Subsystem());
  sub->spec_ = spec;
  sub->phone_map_ = std::move(front_end.phone_map);

  dsp::FeaturePipelineConfig fcfg;
  fcfg.kind = spec.feature;
  fcfg.mfcc.sample_rate = sample_rate;
  fcfg.plp.sample_rate = sample_rate;
  sub->features_ = std::make_unique<dsp::FeaturePipeline>(fcfg);

  am::HmmTopology topology{spec.num_phones, 3};
  am::HmmTransitions transitions = front_end.transitions();
  sub->model_ = std::move(front_end.model);
  sub->decoder_ = std::make_unique<decoder::PhoneLoopDecoder>(
      *sub->model_, topology, std::move(transitions), spec.decoder);

  phonotactic::NgramIndexer indexer(spec.num_phones, spec.ngram_order);
  phonotactic::SupervectorConfig sv_cfg;
  sv_cfg.counts.max_order = spec.ngram_order;
  sv_cfg.counts.acoustic_scale = spec.decoder.acoustic_scale;
  sv_cfg.use_lattice = spec.use_lattice_counts;
  sub->builder_ = std::make_unique<phonotactic::SupervectorBuilder>(
      std::move(indexer), sv_cfg);
  return sub;
}

std::vector<phonotactic::SparseVec> Subsystem::fit_tfllr(
    const corpus::Dataset& train) {
  std::vector<phonotactic::SparseVec> train_svs(train.size());
  util::parallel_for(0, train.size(), [&](std::size_t i) {
    train_svs[i] = process_internal(train[i], /*apply_tfllr=*/false);
  });

  tfllr_ = phonotactic::TfllrScaler(builder_->dimension());
  for (const auto& sv : train_svs) tfllr_.accumulate(sv);
  tfllr_.finalize();
  if (spec_.use_tfllr) {
    for (auto& sv : train_svs) tfllr_.transform(sv);
  }
  return train_svs;
}

DecodedSupervectors Subsystem::decode_splits(const corpus::LreCorpus& corpus) {
  PHONOLID_SPAN("decode_splits");
  DecodedSupervectors ds;
  ds.train = fit_tfllr(corpus.vsm_train());
  ds.dev = process_all(corpus.dev());
  ds.test = process_all(corpus.test());
  ds.tfllr = tfllr_;
  return ds;
}

void Subsystem::set_tfllr(phonotactic::TfllrScaler tfllr) {
  tfllr_ = std::move(tfllr);
}

void Subsystem::serialize_front_end(std::ostream& out) const {
  write_front_end(out, spec_.family, phone_map_, *model_);
}

std::unique_ptr<Subsystem> Subsystem::build(const corpus::LreCorpus& corpus,
                                            const FrontEndSpec& spec,
                                            std::uint64_t seed) {
  auto sub = assemble(corpus, spec, train_front_end(corpus, spec, seed));
  sub->train_supervectors_ = sub->fit_tfllr(corpus.vsm_train());

  PHONOLID_INFO("core") << "built subsystem " << spec.name << ": "
                        << spec.num_phones << " phones, supervector dim "
                        << sub->builder_->dimension();
  return sub;
}

std::vector<phonotactic::SparseVec> Subsystem::take_train_supervectors() {
  if (train_supervectors_taken_) {
    throw std::logic_error(
        "Subsystem::take_train_supervectors: already taken — the cached "
        "training supervectors are moved out by the first call (use "
        "decode_splits() / the artifact store for repeatable access)");
  }
  train_supervectors_taken_ = true;
  return std::move(train_supervectors_);
}

namespace {

/// Feed `samples` to `session` in `chunk_samples`-sized pushes (single push
/// when 0 — the batch special case).
void push_chunked(StreamingSession& session, std::span<const float> samples,
                  std::size_t chunk_samples) {
  if (chunk_samples == 0 || samples.empty()) {
    session.push(samples);
    return;
  }
  for (std::size_t i = 0; i < samples.size(); i += chunk_samples) {
    session.push(samples.subspan(i, std::min(chunk_samples,
                                             samples.size() - i)));
  }
}

}  // namespace

StreamingSession Subsystem::open_stream(StreamingOptions options) const {
  return StreamingSession(*this, std::move(options));
}

StreamingResult Subsystem::score_stream(std::span<const float> samples,
                                        const StreamingOptions& options) const {
  StreamingSession session = open_stream(options);
  push_chunked(session, samples, options.chunk_samples);
  return session.finalize();
}

decoder::Lattice Subsystem::decode(const corpus::Utterance& utt) const {
  StreamingOptions options;
  options.chunk_samples = batch_chunk_samples_;
  // Lattice-only callers (CLI decode, diagnostics) may not have a fitted
  // TFLLR scaler; the raw supervector in the discarded result is fine.
  options.apply_tfllr = false;
  StreamingSession session = open_stream(std::move(options));
  push_chunked(session, utt.samples, batch_chunk_samples_);
  return session.finalize().lattice;
}

phonotactic::SparseVec Subsystem::process_internal(const corpus::Utterance& utt,
                                                   bool apply_tfllr) const {
  static obs::Counter& utterances =
      obs::Metrics::counter("pipeline.utterances");
  PHONOLID_SPAN("pipeline");

  // The whole chain is one streaming session; `batch_chunk_samples_` only
  // changes how the work is sliced, never the bits that come out.
  StreamingOptions options;
  options.chunk_samples = batch_chunk_samples_;
  options.apply_tfllr = apply_tfllr;
  StreamingSession session(*this, std::move(options));
  push_chunked(session, utt.samples, batch_chunk_samples_);
  StreamingResult res = session.finalize();

  utterances.add();
  return std::move(res.supervector);
}

phonotactic::SparseVec Subsystem::process(const corpus::Utterance& utt) const {
  return process_internal(utt, /*apply_tfllr=*/true);
}

std::vector<phonotactic::SparseVec> Subsystem::process_all(
    const corpus::Dataset& data) const {
  std::vector<phonotactic::SparseVec> out(data.size());
  util::parallel_for(0, data.size(), [&](std::size_t i) {
    out[i] = process(data[i]);
  });
  return out;
}

StageTimes Subsystem::stage_times() const {
  std::lock_guard lock(times_mutex_);
  return times_;
}

void Subsystem::reset_stage_times() const {
  std::lock_guard lock(times_mutex_);
  times_ = StageTimes{};
}

}  // namespace phonolid::core
