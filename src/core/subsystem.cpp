#include "core/subsystem.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace phonolid::core {

std::unique_ptr<Subsystem> Subsystem::build(const corpus::LreCorpus& corpus,
                                            const FrontEndSpec& spec,
                                            std::uint64_t seed) {
  auto sub = std::unique_ptr<Subsystem>(new Subsystem());
  sub->spec_ = spec;
  const std::uint64_t sub_seed = util::derive_stream(seed, spec.seed_salt);

  // 1. Front-end phone set.
  sub->phone_map_ =
      am::build_phone_map(corpus.inventory(), spec.num_phones, sub_seed);

  // 2. Feature pipeline.
  dsp::FeaturePipelineConfig fcfg;
  fcfg.kind = spec.feature;
  fcfg.mfcc.sample_rate = corpus.config().sample_rate;
  fcfg.plp.sample_rate = corpus.config().sample_rate;
  sub->features_ = std::make_unique<dsp::FeaturePipeline>(fcfg);

  // 3. Supervision: align the native-language audio.
  if (spec.native_language >= corpus.native_languages().size()) {
    throw std::invalid_argument("Subsystem: native language out of range");
  }
  const corpus::Dataset& am_data = corpus.am_train(spec.native_language);
  std::vector<am::AlignedUtterance> aligned(am_data.size());
  util::parallel_for(0, am_data.size(), [&](std::size_t i) {
    aligned[i] = am::align_utterance(am_data[i], *sub->features_,
                                     sub->phone_map_);
  });

  // 4. Acoustic model per family.
  am::HmmTopology topology{spec.num_phones, 3};
  am::HmmTransitions transitions;
  switch (spec.family) {
    case ModelFamily::kGmmHmm: {
      am::GmmHmmTrainConfig cfg;
      cfg.gmm.num_components = spec.gmm_components;
      cfg.seed = sub_seed;
      auto model = std::make_unique<am::GmmHmmModel>(
          am::train_gmm_hmm(aligned, spec.num_phones, cfg));
      transitions = model->transitions();
      sub->model_ = std::move(model);
      break;
    }
    case ModelFamily::kAnnHmm:
    case ModelFamily::kDnnHmm: {
      am::NnHmmTrainConfig cfg;
      cfg.nn.hidden_sizes = spec.hidden_sizes;
      cfg.score_gain = spec.nn_score_gain;
      cfg.seed = sub_seed;
      auto model = std::make_unique<am::NnHmmModel>(
          am::train_nn_hmm(aligned, spec.num_phones, cfg));
      transitions = model->transitions();
      sub->model_ = std::move(model);
      break;
    }
  }

  // 5. Lattice decoder.
  sub->decoder_ = std::make_unique<decoder::PhoneLoopDecoder>(
      *sub->model_, topology, transitions, spec.decoder);

  // 6. Supervector builder + TFLLR background on the training set.
  phonotactic::NgramIndexer indexer(spec.num_phones, spec.ngram_order);
  phonotactic::SupervectorConfig sv_cfg;
  sv_cfg.counts.max_order = spec.ngram_order;
  sv_cfg.counts.acoustic_scale = spec.decoder.acoustic_scale;
  sv_cfg.use_lattice = spec.use_lattice_counts;
  sub->builder_ = std::make_unique<phonotactic::SupervectorBuilder>(
      std::move(indexer), sv_cfg);

  const corpus::Dataset& train = corpus.vsm_train();
  std::vector<phonotactic::SparseVec> train_svs(train.size());
  util::parallel_for(0, train.size(), [&](std::size_t i) {
    train_svs[i] = sub->process_internal(train[i], /*apply_tfllr=*/false);
  });

  sub->tfllr_ = phonotactic::TfllrScaler(sub->builder_->dimension());
  for (const auto& sv : train_svs) sub->tfllr_.accumulate(sv);
  sub->tfllr_.finalize();
  if (spec.use_tfllr) {
    for (auto& sv : train_svs) sub->tfllr_.transform(sv);
  }
  sub->train_supervectors_ = std::move(train_svs);

  PHONOLID_INFO("core") << "built subsystem " << spec.name << ": "
                        << spec.num_phones << " phones, supervector dim "
                        << sub->builder_->dimension();
  return sub;
}

decoder::Lattice Subsystem::decode(const corpus::Utterance& utt) const {
  const util::Matrix feats = features_->process(utt.samples);
  return decoder_->decode(feats);
}

phonotactic::SparseVec Subsystem::process_internal(const corpus::Utterance& utt,
                                                   bool apply_tfllr) const {
  static obs::Counter& utterances =
      obs::Metrics::counter("pipeline.utterances");
  PHONOLID_SPAN("pipeline");

  obs::Span feature_span("features");
  const util::Matrix feats = features_->process(utt.samples);
  const double feat_s = feature_span.stop();

  obs::Span decode_span("decode");
  const decoder::Lattice lattice = decoder_->decode(feats);
  const double dec_s = decode_span.stop();

  obs::Span sv_span("supervector");
  phonotactic::SparseVec sv = builder_->build(lattice);
  if (apply_tfllr && spec_.use_tfllr) tfllr_.transform(sv);
  const double sv_s = sv_span.stop();

  utterances.add();
  {
    std::lock_guard lock(times_mutex_);
    times_.feature_s += feat_s;
    times_.decode_s += dec_s;
    times_.supervector_s += sv_s;
    times_.audio_s += static_cast<double>(utt.samples.size()) /
                      features_->config().mfcc.sample_rate;
  }
  return sv;
}

phonotactic::SparseVec Subsystem::process(const corpus::Utterance& utt) const {
  return process_internal(utt, /*apply_tfllr=*/true);
}

std::vector<phonotactic::SparseVec> Subsystem::process_all(
    const corpus::Dataset& data) const {
  std::vector<phonotactic::SparseVec> out(data.size());
  util::parallel_for(0, data.size(), [&](std::size_t i) {
    out[i] = process(data[i]);
  });
  return out;
}

StageTimes Subsystem::stage_times() const {
  std::lock_guard lock(times_mutex_);
  return times_;
}

void Subsystem::reset_stage_times() const {
  std::lock_guard lock(times_mutex_);
  times_ = StageTimes{};
}

}  // namespace phonolid::core
