// The Discriminative Boosting Algorithm — vote counting and training-set
// adoption (paper §3, Eq. 10-13 and step (e)).
//
// These are pure functions over score matrices so the algorithm can be
// unit-tested independently of the acoustic pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "phonotactic/sparse.h"
#include "util/matrix.h"

namespace phonolid::core {

/// The high-confidence criterion of Eq. 13 plus ablation variants.
enum class VoteCriterion : std::uint8_t {
  /// Eq. 13: subsystem votes for k iff f_k > 0 AND every rival f_p < 0.
  kStrict,
  /// Ablation: votes for argmax k whenever f_k > 0 (no rival constraint).
  kPositiveArgmax,
  /// Ablation: always votes for the argmax class.
  kArgmax,
};

/// Vote bookkeeping for a pooled test set (Eq. 10-12).
struct VoteResult {
  std::size_t num_utts = 0;
  std::size_t num_classes = 0;
  std::size_t num_subsystems = 0;
  /// c_{jk}: row-major (utt j, class k) vote totals.
  std::vector<std::uint16_t> counts;
  /// v_{jqk} bits per subsystem, row-major (utt j, class k).
  std::vector<std::vector<std::uint8_t>> per_subsystem;
  /// Signed vote margins per subsystem, row-major (utt j, class k): positive
  /// iff the subsystem votes for class k under the criterion the result was
  /// computed with (0 only on exact argmax ties).  Under kStrict (Eq. 13)
  /// the margin is min(f_k, -max_{p != k} f_p) — how far the utterance sits
  /// inside (or outside) the high-confidence region; the decision ledger
  /// records it per adoption decision.
  std::vector<std::vector<float>> margins;

  [[nodiscard]] std::uint16_t count(std::size_t j, std::size_t k) const {
    return counts.at(j * num_classes + k);
  }
  [[nodiscard]] bool vote(std::size_t q, std::size_t j, std::size_t k) const {
    return per_subsystem.at(q).at(j * num_classes + k) != 0;
  }
  [[nodiscard]] float margin(std::size_t q, std::size_t j,
                             std::size_t k) const {
    return margins.at(q).at(j * num_classes + k);
  }
};

/// Counts votes over the subsystems' score matrices (each utts x K).
VoteResult compute_votes(const std::vector<const util::Matrix*>& scores,
                         VoteCriterion criterion = VoteCriterion::kStrict);

/// The adopted high-confidence test set T_DBA (paper step (e)).
struct TrdbaSelection {
  std::vector<std::uint32_t> utt_index;  // indices into the pooled test set
  std::vector<std::int32_t> label;       // hypothesised language l_k
  /// M_n of Eq. 15: per subsystem, how many adopted utterances it voted for
  /// (with the adopted label).
  std::vector<std::size_t> subsystem_fit_counts;
  /// Total votes cast across the whole VoteResult (all utterances, all
  /// subsystems) — independent of min_votes; carried here so run reports can
  /// attribute per-round vote volume without re-deriving the VoteResult.
  std::size_t votes_cast = 0;
  /// The threshold this selection was made with (0 for hand-built ones).
  std::size_t min_votes = 0;
};

/// Adopt every utterance with >= `min_votes` votes for its best class
/// (ties between classes are skipped as ambiguous).
TrdbaSelection select_trdba(const VoteResult& votes, std::size_t min_votes);

/// Label error rate of a selection against ground truth (Table 1's
/// "error rate" column).  Returns 0 for an empty selection.
double selection_error_rate(const TrdbaSelection& selection,
                            const std::vector<std::int32_t>& true_labels);

/// Tr_DBA composition (paper step (e)).
enum class DbaMode : std::uint8_t {
  kM1,  // Tr_DBA = [T_DBA]            — adopted test data only
  kM2,  // Tr_DBA = [T_DBA  Tr]        — adopted test data + original train
};

const char* to_string(DbaMode mode) noexcept;

/// Assemble the Tr_DBA pointer/label lists for one subsystem.
void compose_trdba(DbaMode mode, const TrdbaSelection& selection,
                   const std::vector<phonotactic::SparseVec>& test_svs,
                   const std::vector<phonotactic::SparseVec>& train_svs,
                   const std::vector<std::int32_t>& train_labels,
                   std::vector<const phonotactic::SparseVec*>& out_x,
                   std::vector<std::int32_t>& out_y);

}  // namespace phonolid::core
